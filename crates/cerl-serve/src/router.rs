//! Shard-per-domain routing: one serving fleet, N independently
//! hot-swappable engines.
//!
//! The paper's deployment is inherently sharded: observational data
//! arrives *per domain* (a city, a cohort, a geography), and each
//! domain's estimator retrains on its own cadence. [`ShardRouter`] fronts
//! N [`ServingEngine`] shards with a
//! [`ShardMap`] — the `domain → shard`
//! assignment that also travels inside snapshot metadata
//! ([`ModelSnapshot::shard_map`](cerl_core::snapshot::ModelSnapshot)) so
//! a replica restoring from bytes learns the fleet topology along with
//! its weights:
//!
//! * **Routing.** [`ShardRouter::predict_ite`] resolves the request's
//!   domain id through the map and serves it from a shard of that
//!   domain's replica-set — through the shard's [`BatchScheduler`] when
//!   the router was built [`with_batching`](ShardRouter::with_batching),
//!   directly otherwise. Unknown domains fail fast with
//!   [`ServeError::UnknownDomain`].
//! * **Replicated domains and the policy contract.** A
//!   [`ShardMap`] may serve one domain from *several* identical shards
//!   (a [`ReplicaSet`] — the read-scaling answer to one celebrity
//!   domain saturating one engine). Which replica serves a given
//!   sub-batch is decided by the router's pluggable
//!   [`RoutePolicy`] ([`set_route_policy`](ShardRouter::set_route_policy);
//!   default [`LeastLoaded`]). The contract, machine-checked by the
//!   property suite: **policy choice may never change results, only
//!   placement** — replicas serve identical models and per-row
//!   inference is shard-independent, so every policy returns rows
//!   bitwise identical to an unreplicated reference; a policy answer
//!   outside the replica-set is ignored in favor of the set's primary.
//!   Single-replica domains skip the policy entirely and route exactly
//!   as they did before replication existed. Replica membership changes
//!   ride the same machinery as rebalancing:
//!   [`begin_add_replica`](ShardRouter::begin_add_replica) stages +
//!   probes, [`commit_rebalance`](ShardRouter::commit_rebalance)
//!   publishes then flips the map, while
//!   [`drain_replica`](ShardRouter::drain_replica) /
//!   [`restore_replica`](ShardRouter::restore_replica) /
//!   [`remove_replica`](ShardRouter::remove_replica) take a replica out
//!   of rotation reversibly, then for good.
//! * **Independent hot swaps.** [`ShardRouter::swap_shard_engine`] /
//!   [`ShardRouter::swap_shard_snapshot_bytes`] publish a new version on
//!   one shard (with the warm-up probe of
//!   [`swap_engine_warm`](ServingEngine::swap_engine_warm) — a broken
//!   successor is never published) while every other shard keeps serving
//!   undisturbed.
//! * **Cross-shard queries.** [`ShardRouter::predict_ite_scatter`]
//!   serves a *mixed-domain* request — every row carries its own domain
//!   tag — by demultiplexing rows into per-shard sub-batches (original
//!   row order preserved within each sub-batch), fanning the sub-batches
//!   out through each shard's scheduler (or a pinned
//!   [`predict_ite_parallel`](ServingEngine::predict_ite_parallel) pass
//!   when unbatched), and gathering the slices back into submission
//!   order. Per-row inference is batch-independent, so the merged result
//!   is **bitwise identical** to a single unsharded engine serving the
//!   same rows (property-tested in `tests/property_based.rs`).
//! * **Zero-downtime rebalancing.** [`ShardRouter::begin_rebalance`]
//!   stages a successor engine for the destination shard (probed at
//!   staging time — see
//!   [`probe_successor`](ServingEngine::probe_successor)) and opens the
//!   *dual-route window*: the routing map is untouched, so reads of the
//!   moving domain keep landing on the source shard, which still holds
//!   it. [`ShardRouter::commit_rebalance`] publishes the staged engine on
//!   the destination **first** (a warm swap) and only then flips the
//!   [`ShardMap`] with a single `Arc` replacement — requests pin the map
//!   once per call, so each one observes either the old or the new
//!   topology in full, never a torn mixture, and whichever shard a
//!   request routes to held the domain at the instant its map was
//!   pinned. [`ShardRouter::abort_rebalance`] drops the staged engine;
//!   nothing was ever published, so rollback is a no-op for readers.
//! * **Observability.** The router keeps its own [`ServeStats`]
//!   (end-to-end latency, per-version request accounting across the
//!   fleet, scatter fan-out shape); [`ShardRouter::shard_stats`] exposes
//!   each shard scheduler's queue-wait and batch-shape numbers for
//!   canary watching.

use crate::error::ServeError;
use crate::orchestrator::{CanarySnapshot, ShardLoad};
use crate::policy::{LeastLoaded, RouteContext, RoutePolicy};
use crate::scheduler::{BatchConfig, BatchScheduler, ResponseHandle, ServeMetrics, ServeStats};
use cerl_core::engine::CerlEngine;
use cerl_core::error::CerlError;
use cerl_core::serving::ServingEngine;
use cerl_core::snapshot::{ModelSnapshot, ReplicaSet, ShardMap};
use cerl_math::Matrix;
use cerl_obs::{DomainCounters, MetricsRegistry, Stage, TraceSpan};
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::task::{Context, Poll};
use std::time::Instant;

/// One shard of the fleet: the hot-swappable engine plus its optional
/// batching front-end.
struct ShardSlot {
    engine: Arc<ServingEngine>,
    scheduler: Option<BatchScheduler>,
}

/// An in-flight topology change: staged at `begin_rebalance` /
/// `begin_add_replica`, consumed by `commit_rebalance` /
/// `abort_rebalance`. While one of these is pending the routing map is
/// unchanged — the staged engine is invisible to readers until the
/// commit publishes it.
enum PendingChange {
    /// Move `domain`'s replica from shard `from` to shard `to`.
    Move {
        domain: u64,
        from: usize,
        to: usize,
        staged: CerlEngine,
    },
    /// Add a replica of `domain` on `shard` (read scaling).
    AddReplica {
        domain: u64,
        shard: usize,
        staged: CerlEngine,
    },
}

impl PendingChange {
    fn domain(&self) -> u64 {
        match self {
            PendingChange::Move { domain, .. } | PendingChange::AddReplica { domain, .. } => {
                *domain
            }
        }
    }
}

/// Outcome of one cross-shard scatter-gather request
/// ([`ShardRouter::predict_ite_scatter_versioned`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterResponse {
    /// Predicted ITEs in the request's original row order.
    pub ite: Vec<f64>,
    /// `(shard, engine version)` for every shard that served part of the
    /// request, ascending by shard index. Each sub-batch ran against one
    /// pinned version, so every output row is attributable to exactly
    /// one entry here — via its row's domain tag and the pinned map for
    /// single-replica domains, or via
    /// [`ScatterResponse::placements`] when a routing policy chose among
    /// replicas.
    pub shard_versions: Vec<(usize, u64)>,
    /// `(domain, shard)` placements the routing policy made for this
    /// request, ascending by domain — the per-replica attribution trail:
    /// a row's domain tag resolves here to the shard (and through
    /// [`ScatterResponse::shard_versions`] to the exact engine version)
    /// that served it. Empty when the pinned topology had no replicated
    /// domain: attribution then follows the map itself, exactly as
    /// before replication existed.
    pub placements: Vec<(u64, usize)>,
}

/// In-flight response of a [`ShardRouter::submit_scatter`] call.
///
/// Resolves once every participating shard's sub-batch has answered;
/// consume it by blocking ([`ScatterHandle::wait`]) or by `.await`ing /
/// polling it. Polling drives each still-pending per-shard
/// [`ResponseHandle`] with the caller's waker, so a reactor wakes
/// exactly when a sub-batch lands. Any sub-batch failure fails the
/// whole request with that sub-batch's typed error (sub-batches already
/// submitted still execute; their slices are discarded). Dropping the
/// handle abandons the request the same way.
#[must_use = "submit_scatter() only enqueues; wait() or poll to receive the prediction"]
pub struct ScatterHandle {
    rows: usize,
    rows_by_shard: Vec<Vec<usize>>,
    placements: Vec<(u64, usize)>,
    pending: Vec<(usize, ResponseHandle)>,
    resolved: Vec<(usize, u64, Vec<f64>)>,
    submitted: Instant,
    metrics: Arc<ServeMetrics>,
    trace: Option<TraceSpan>,
    done: bool,
}

impl ScatterHandle {
    /// Block until every sub-batch has answered and gather the merged
    /// [`ScatterResponse`].
    pub fn wait(mut self) -> Result<ScatterResponse, ServeError> {
        while !self.pending.is_empty() {
            let (shard, handle) = self.pending.remove(0);
            match handle.wait() {
                Ok((version, slice)) => self.resolved.push((shard, version, slice)),
                Err(e) => return Err(self.fail(e)),
            }
        }
        Ok(self.finish())
    }

    fn fail(&mut self, e: ServeError) -> ServeError {
        self.done = true;
        if let Some(trace) = &self.trace {
            trace.stamp(Stage::Gathered);
        }
        self.metrics.record_rejection(&e);
        e
    }

    /// Gather resolved slices into submission order and record the
    /// request (shared tail of `wait` and `poll`).
    fn finish(&mut self) -> ScatterResponse {
        self.done = true;
        if let Some(trace) = &self.trace {
            trace.stamp(Stage::Gathered);
        }
        let mut ite = vec![0.0f64; self.rows];
        self.resolved.sort_unstable_by_key(|&(shard, _, _)| shard);
        let mut shard_versions = Vec::with_capacity(self.resolved.len());
        for (shard, version, slice) in &self.resolved {
            // panic-ok: resolved entries were produced from
            // rows_by_shard's own enumerate() indices.
            gather(&mut ite, &self.rows_by_shard[*shard], slice);
            shard_versions.push((*shard, *version));
        }
        self.metrics
            .record_scatter(&shard_versions, self.submitted.elapsed());
        ScatterResponse {
            ite,
            shard_versions,
            placements: std::mem::take(&mut self.placements),
        }
    }
}

impl Future for ScatterHandle {
    type Output = Result<ScatterResponse, ServeError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        // panic-ok: Future contract violation by the caller — polling
        // after Ready is a programming error, not a serving fault.
        assert!(!this.done, "ScatterHandle polled after completion");
        let mut i = 0;
        while i < this.pending.len() {
            // panic-ok: i < pending.len() by the loop condition.
            match Pin::new(&mut this.pending[i].1).poll(cx) {
                Poll::Pending => i += 1,
                Poll::Ready(outcome) => {
                    let (shard, _) = this.pending.swap_remove(i);
                    match outcome {
                        Ok((version, slice)) => this.resolved.push((shard, version, slice)),
                        Err(e) => return Poll::Ready(Err(this.fail(e))),
                    }
                }
            }
        }
        if this.pending.is_empty() {
            Poll::Ready(Ok(this.finish()))
        } else {
            Poll::Pending
        }
    }
}

/// Domain-keyed router over N independently hot-swappable serving shards
/// (see the [module docs](self)).
pub struct ShardRouter {
    shards: Vec<ShardSlot>,
    /// The routing topology, swapped atomically on a rebalance commit.
    /// Requests clone the `Arc` once and route every row of the request
    /// through that pinned topology.
    map: RwLock<Arc<ShardMap>>,
    /// At most one topology change stages at a time; the mutex also
    /// serializes begin/commit/abort and the drain/restore map flips
    /// against each other (the map `RwLock` alone orders readers, but
    /// read-modify-write sequences need this).
    rebalance: Mutex<Option<PendingChange>>,
    /// Which replica serves a replicated domain's sub-batch. Swappable
    /// at runtime; never consulted for single-replica domains.
    policy: RwLock<Arc<dyn RoutePolicy>>,
    /// Replicas taken out of rotation by `drain_replica` and still
    /// restorable (their engines keep holding the domain).
    draining: Mutex<Vec<(u64, usize)>>,
    /// Per-domain request/row counters — the hot-domain attribution
    /// signal behind `cerl_serve_domain_*` registry rows.
    domains: DomainCounters,
    metrics: Arc<ServeMetrics>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.shards.len())
            .field("domains", &self.map().len())
            .field(
                "batched",
                &self.shards.first().is_some_and(|s| s.scheduler.is_some()),
            )
            .field("rebalancing", &self.rebalance_in_progress())
            .finish_non_exhaustive()
    }
}

impl ShardRouter {
    /// Build an unbatched router: requests go straight to their shard's
    /// engine. `engines[i]` serves shard `i`; the map must declare
    /// exactly `engines.len()` shards.
    pub fn new(engines: Vec<CerlEngine>, map: ShardMap) -> Result<Self, ServeError> {
        Self::build(engines, map, None)
    }

    /// Build a router with a [`BatchScheduler`] (one per shard, same
    /// knobs) coalescing each shard's traffic.
    pub fn with_batching(
        engines: Vec<CerlEngine>,
        map: ShardMap,
        batch: BatchConfig,
    ) -> Result<Self, ServeError> {
        Self::build(engines, map, Some(batch))
    }

    /// Rebuild a fleet from per-shard snapshot bytes. The shard map is
    /// read from the snapshot metadata (every replica that carries one
    /// must agree), and when the replicas also carry their shard index
    /// ([`ShardRouter::shard_snapshot_bytes`] always embeds it) each one
    /// is seated at that index, so the order replicas were fetched from
    /// a registry in does not matter. Index-free replicas (all or none —
    /// mixing is rejected) are seated positionally: shard `i` restores
    /// from `replicas[i]`.
    pub fn from_snapshot_bytes(
        replicas: &[Vec<u8>],
        batch: Option<BatchConfig>,
    ) -> Result<Self, ServeError> {
        let mut seats: Vec<Option<CerlEngine>> = (0..replicas.len()).map(|_| None).collect();
        let mut positional = Vec::new();
        let mut map: Option<ShardMap> = None;
        for bytes in replicas {
            let snapshot = ModelSnapshot::from_bytes(bytes).map_err(ServeError::Engine)?;
            match (&map, &snapshot.shard_map) {
                (None, Some(found)) => map = Some(found.clone()),
                (Some(agreed), Some(found)) if agreed != found => {
                    // Name the disagreement: a registry captured
                    // mid-rebalance shows up as a `moved` entry, which is
                    // far more actionable than "maps differ".
                    let diff = agreed.diff(found);
                    let detail = if diff.is_empty() {
                        "shard counts differ".to_string()
                    } else {
                        diff.moved
                            .iter()
                            .map(ToString::to_string)
                            .chain(diff.added.iter().map(|a| {
                                format!(
                                    "domain {} only in one map (replica-set {})",
                                    a.domain, a.replicas
                                )
                            }))
                            .chain(
                                diff.removed
                                    .iter()
                                    .map(|a| format!("domain {} missing from one map", a.domain)),
                            )
                            .collect::<Vec<_>>()
                            .join("; ")
                    };
                    return Err(invalid_fleet(format!(
                        "replica snapshots carry conflicting shard maps: {detail}"
                    )));
                }
                _ => {}
            }
            let shard_index = snapshot.shard_index;
            let engine = CerlEngine::from_snapshot(snapshot).map_err(ServeError::Engine)?;
            match shard_index {
                Some(shard) => {
                    let seat = seats.get_mut(shard).ok_or_else(|| {
                        invalid_fleet(format!(
                            "replica claims shard {shard} but only {} replica(s) were provided",
                            replicas.len()
                        ))
                    })?;
                    if seat.is_some() {
                        return Err(invalid_fleet(format!("two replicas claim shard {shard}")));
                    }
                    *seat = Some(engine);
                }
                None => positional.push(engine),
            }
        }
        let map =
            map.ok_or_else(|| invalid_fleet("no replica snapshot carries a shard map".into()))?;
        if map.shard_count() != replicas.len() {
            return Err(ServeError::FleetSizeMismatch {
                expected: map.shard_count(),
                found: replicas.len(),
            });
        }
        let engines = if positional.len() == replicas.len() {
            positional
        } else if positional.is_empty() {
            // Every replica named its seat; seats.len() == replicas.len()
            // and no seat was claimed twice, so all are filled.
            seats.into_iter().flatten().collect()
        } else {
            return Err(invalid_fleet(
                "some replica snapshots carry a shard index and some do not".into(),
            ));
        };
        Self::build(engines, map, batch)
    }

    fn build(
        engines: Vec<CerlEngine>,
        map: ShardMap,
        batch: Option<BatchConfig>,
    ) -> Result<Self, ServeError> {
        if engines.is_empty() {
            return Err(invalid_fleet("a fleet needs at least one shard".into()));
        }
        if map.shard_count() != engines.len() {
            return Err(invalid_fleet(format!(
                "shard map declares {} shard(s) but {} engine(s) were provided",
                map.shard_count(),
                engines.len()
            )));
        }
        let shards = engines
            .into_iter()
            .map(|engine| {
                let engine = Arc::new(ServingEngine::new(engine));
                let scheduler = batch
                    .as_ref()
                    .map(|cfg| BatchScheduler::new(Arc::clone(&engine), cfg.clone()));
                ShardSlot { engine, scheduler }
            })
            .collect();
        Ok(Self {
            shards,
            map: RwLock::new(Arc::new(map)),
            rebalance: Mutex::new(None),
            policy: RwLock::new(Arc::new(LeastLoaded)),
            draining: Mutex::new(Vec::new()),
            domains: DomainCounters::new(),
            metrics: Arc::new(ServeMetrics::default()),
        })
    }

    /// Swap the replica routing policy (default [`LeastLoaded`]). Takes
    /// effect for requests submitted after the call; in-flight requests
    /// finish under the policy they started with. Policies never change
    /// results, only placement (see the [module docs](self)), so
    /// swapping mid-traffic is always safe.
    pub fn set_route_policy(&self, policy: Arc<dyn RoutePolicy>) {
        *self.policy.write().unwrap_or_else(PoisonError::into_inner) = policy;
    }

    /// The replica routing policy currently in effect.
    pub fn route_policy(&self) -> Arc<dyn RoutePolicy> {
        self.policy
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Ask the current policy which replica serves `rows` rows of
    /// `domain` under `replicas`. Single-replica sets short-circuit to
    /// the one member without touching the policy or assembling fleet
    /// state; a policy answer outside the set degrades to the primary.
    fn choose_replica(&self, domain: u64, rows: usize, replicas: &ReplicaSet) -> usize {
        if replicas.len() == 1 {
            return replicas.primary();
        }
        let policy = self.route_policy();
        let loads = self.shard_loads();
        let versions = self.shard_versions();
        let ctx = RouteContext {
            loads: &loads,
            versions: &versions,
        };
        let choice = policy.choose(domain, rows, replicas, &ctx);
        if replicas.contains(choice) {
            choice
        } else {
            replicas.primary()
        }
    }

    /// Resolve the *primary* shard serving `domain` under the current
    /// topology (the smallest replica id — the whole replica-set for a
    /// replicated domain comes from [`ShardRouter::replicas`]; which
    /// replica a given request actually lands on is the
    /// [`RoutePolicy`]'s call).
    pub fn route(&self, domain: u64) -> Result<usize, ServeError> {
        self.map()
            .shard_for(domain)
            .ok_or(ServeError::UnknownDomain { domain })
    }

    /// The full replica-set serving `domain` under the current topology.
    pub fn replicas(&self, domain: u64) -> Result<ReplicaSet, ServeError> {
        self.map()
            .replicas_for(domain)
            .cloned()
            .ok_or(ServeError::UnknownDomain { domain })
    }

    /// Predicted ITEs for one request belonging to `domain`.
    pub fn predict_ite(&self, domain: u64, x: &Matrix) -> Result<Vec<f64>, ServeError> {
        Ok(self.predict_ite_versioned(domain, x)?.1)
    }

    /// Like [`ShardRouter::predict_ite`], also reporting the engine
    /// version (of the serving shard) that answered.
    pub fn predict_ite_versioned(
        &self,
        domain: u64,
        x: &Matrix,
    ) -> Result<(u64, Vec<f64>), ServeError> {
        let start = Instant::now();
        let outcome = self
            .map()
            .replicas_for(domain)
            .ok_or(ServeError::UnknownDomain { domain })
            .map(|replicas| self.choose_replica(domain, x.rows(), replicas))
            .and_then(|shard| {
                // panic-ok: the pinned map's replica ids were validated
                // against the fleet size at construction.
                let slot = &self.shards[shard];
                match &slot.scheduler {
                    Some(scheduler) => scheduler.predict_ite_versioned(x),
                    None => slot
                        .engine
                        .predict_ite_versioned(x)
                        .map_err(ServeError::from),
                }
            });
        match outcome {
            Ok((version, ite)) => {
                self.domains.record(domain, x.rows() as u64);
                self.metrics.record_response(version, start.elapsed());
                Ok((version, ite))
            }
            Err(e) => {
                self.metrics.record_rejection(&e);
                Err(e)
            }
        }
    }

    /// Predicted ITEs for a mixed-domain request: row `i` of `x` belongs
    /// to `domains[i]`. Rows are demuxed into per-shard sub-batches,
    /// fanned out, and gathered back into the original row order — the
    /// merged result is bitwise identical to one unsharded engine
    /// serving the same rows.
    pub fn predict_ite_scatter(&self, domains: &[u64], x: &Matrix) -> Result<Vec<f64>, ServeError> {
        Ok(self.predict_ite_scatter_versioned(domains, x)?.ite)
    }

    /// Like [`ShardRouter::predict_ite_scatter`], also reporting which
    /// shards (and which engine versions) answered.
    ///
    /// The topology is pinned **once** for the whole request: every row
    /// routes through the same [`ShardMap`] even if a rebalance commits
    /// mid-call, and each sub-batch runs against one pinned engine
    /// version of its shard. Any sub-batch failure fails the whole
    /// request with that sub-batch's typed error (sub-batches already
    /// submitted still execute; their slices are discarded).
    pub fn predict_ite_scatter_versioned(
        &self,
        domains: &[u64],
        x: &Matrix,
    ) -> Result<ScatterResponse, ServeError> {
        self.submit_scatter(domains, x)?.wait()
    }

    /// Enqueue one mixed-domain request without blocking for its result.
    ///
    /// The demux and per-shard submissions happen here (so topology is
    /// pinned and row order fixed at call time); the returned
    /// [`ScatterHandle`] resolves — by blocking
    /// ([`ScatterHandle::wait`]) or by polling (it is a [`Future`]) —
    /// once every shard's sub-batch has answered. On a **batched** fleet
    /// this call never blocks on inference, which is what lets a single
    /// reactor thread keep thousands of scatter requests in flight; on
    /// an unbatched fleet each shard's pinned parallel pass runs inline
    /// before this returns.
    pub fn submit_scatter(&self, domains: &[u64], x: &Matrix) -> Result<ScatterHandle, ServeError> {
        self.submit_scatter_traced(domains, x, None)
    }

    /// [`ShardRouter::submit_scatter`] with an optional trace span whose
    /// stage stamps follow the request through every shard's scheduler.
    ///
    /// All sub-batches share the one span: each stage records the
    /// *earliest* time any sub-batch reached it (first-writer-wins in
    /// [`cerl_obs::TraceSpan::stamp`]), so the span reads as the
    /// request's critical path. Completion stays with the caller — the
    /// router never calls [`cerl_obs::TraceSpan::complete`].
    pub fn submit_scatter_traced(
        &self,
        domains: &[u64],
        x: &Matrix,
        trace: Option<TraceSpan>,
    ) -> Result<ScatterHandle, ServeError> {
        match self.scatter_submit(domains, x, trace) {
            Ok(handle) => Ok(handle),
            Err(e) => {
                self.metrics.record_rejection(&e);
                Err(e)
            }
        }
    }

    fn scatter_submit(
        &self,
        domains: &[u64],
        x: &Matrix,
        trace: Option<TraceSpan>,
    ) -> Result<ScatterHandle, ServeError> {
        let submitted = Instant::now();
        if domains.len() != x.rows() {
            return Err(ServeError::DomainTagMismatch {
                rows: x.rows(),
                tags: domains.len(),
            });
        }
        if x.rows() == 0 {
            return Err(ServeError::Engine(CerlError::EmptyInput {
                what: "scatter request matrix has no rows",
            }));
        }
        // Pin the topology once; resolve every row before any work runs
        // so an unknown domain rejects the request without partial
        // execution.
        let map = self.map();
        let mut rows_by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        // Group rows per domain: hot-domain counters attribute whole
        // sub-batches, and a routing policy places a domain's sub-batch
        // knowing its size. Ascending by domain.
        let mut groups: Vec<(u64, usize)> = Vec::new();
        for &domain in domains {
            match groups.binary_search_by_key(&domain, |g| g.0) {
                // panic-ok: binary_search returned an occupied index.
                Ok(i) => groups[i].1 += 1,
                Err(i) => groups.insert(i, (domain, 1)),
            }
        }
        // Place every domain's sub-batch: the one mapped shard for
        // single-replica domains (bitwise identical to the
        // pre-replication router), the policy's pick otherwise.
        let mut placements: Vec<(u64, usize)> = Vec::with_capacity(groups.len());
        let mut replicated = false;
        for &(domain, rows) in &groups {
            let replicas = map
                .replicas_for(domain)
                .ok_or(ServeError::UnknownDomain { domain })?;
            replicated |= replicas.len() > 1;
            let shard = self.choose_replica(domain, rows, replicas);
            placements.push((domain, shard));
            self.domains.record(domain, rows as u64);
        }
        for (row, &domain) in domains.iter().enumerate() {
            let shard = match placements.binary_search_by_key(&domain, |g| g.0) {
                // panic-ok: every request domain was placed above.
                Ok(i) => placements[i].1,
                Err(_) => unreachable!("domain placed above"), // panic-ok: see Ok arm
            };
            // panic-ok: placements hold members of validated
            // replica-sets, all < shards.len().
            rows_by_shard[shard].push(row);
        }
        // The attribution trail is only carried when a policy actually
        // had a choice; with no replicated domain in the request,
        // attribution follows the pinned map exactly as before.
        if !replicated {
            placements.clear();
        }

        // Fan out: with batching, submit every sub-batch before waiting
        // on any, so the shards' collector threads coalesce and execute
        // them concurrently; unbatched shards run a pinned parallel pass
        // inline. `rows_by_shard[shard]` is ascending, so each sub-batch
        // preserves the request's original row order.
        let mut pending: Vec<(usize, ResponseHandle)> = Vec::new();
        let mut resolved: Vec<(usize, u64, Vec<f64>)> = Vec::new();
        for (shard, rows) in rows_by_shard
            .iter()
            .enumerate()
            .filter(|(_, rows)| !rows.is_empty())
        {
            let sub = x.select_rows(rows);
            // panic-ok: shard is an enumerate() index over a Vec sized
            // to shards.len() (both sites in this arm).
            match &self.shards[shard].scheduler {
                Some(scheduler) => {
                    pending.push((shard, scheduler.submit_traced(sub, trace.clone())?));
                }
                None => {
                    // panic-ok: same enumerate() bound as above.
                    let (version, slice) = self.shards[shard]
                        .engine
                        .predict_ite_parallel_versioned(&sub, 0)
                        .map_err(ServeError::Engine)?;
                    resolved.push((shard, version, slice));
                }
            }
        }
        Ok(ScatterHandle {
            rows: x.rows(),
            rows_by_shard,
            placements,
            pending,
            resolved,
            submitted,
            metrics: Arc::clone(&self.metrics),
            trace,
            done: false,
        })
    }

    /// Stage a rebalance: move `domain` to `to_shard`, whose next engine
    /// will be `successor` (an engine that holds the domain — typically
    /// the destination's current model retrained on the domain's data, or
    /// a snapshot restored from the source shard).
    ///
    /// The successor is probed immediately (staging fails fast if it
    /// cannot serve) but **not** published: this call opens the
    /// dual-route window in which the routing map still sends the
    /// domain's reads to its current shard. Only one rebalance may be in
    /// flight per router.
    pub fn begin_rebalance(
        &self,
        domain: u64,
        to_shard: usize,
        successor: CerlEngine,
    ) -> Result<(), ServeError> {
        let from = self.route(domain)?;
        self.begin_move_replica(domain, from, to_shard, successor)
    }

    /// [`ShardRouter::begin_rebalance`] for an explicit source replica:
    /// move `domain`'s replica on `from_shard` to `to_shard`. For a
    /// single-replica domain `from_shard` is its one shard and this is
    /// exactly `begin_rebalance`; for a replicated domain it names which
    /// member of the replica-set moves.
    pub fn begin_move_replica(
        &self,
        domain: u64,
        from_shard: usize,
        to_shard: usize,
        successor: CerlEngine,
    ) -> Result<(), ServeError> {
        let mut pending = self
            .rebalance
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(p) = pending.as_ref() {
            return Err(ServeError::RebalanceInProgress { domain: p.domain() });
        }
        let replicas = self.replicas(domain)?;
        if to_shard >= self.shards.len() {
            return Err(ServeError::UnknownShard {
                shard: to_shard,
                shards: self.shards.len(),
            });
        }
        if !replicas.contains(from_shard) {
            return Err(invalid_fleet(format!(
                "domain {domain} has no replica on shard {from_shard} (replica-set {replicas})"
            )));
        }
        if replicas.contains(to_shard) {
            return Err(ServeError::ReplicaAlreadyServing {
                domain,
                shard: to_shard,
            });
        }
        ServingEngine::probe_successor(&successor).map_err(ServeError::Engine)?;
        *pending = Some(PendingChange::Move {
            domain,
            from: from_shard,
            to: to_shard,
            staged: successor,
        });
        Ok(())
    }

    /// Stage a read-scaling replica: `domain`'s replica-set grows by
    /// `shard`, whose next engine will be `successor` (which must hold
    /// the domain — typically restored from another replica's snapshot
    /// bytes).
    ///
    /// Mirrors [`ShardRouter::begin_rebalance`]'s contract exactly: the
    /// successor is probed now but **not** published, the map is
    /// untouched until [`commit_rebalance`](ShardRouter::commit_rebalance)
    /// (which publishes the engine *first*, then grows the set in one
    /// `Arc` flip), and [`abort_rebalance`](ShardRouter::abort_rebalance)
    /// drops the staged engine without readers ever seeing it.
    pub fn begin_add_replica(
        &self,
        domain: u64,
        shard: usize,
        successor: CerlEngine,
    ) -> Result<(), ServeError> {
        let mut pending = self
            .rebalance
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(p) = pending.as_ref() {
            return Err(ServeError::RebalanceInProgress { domain: p.domain() });
        }
        let replicas = self.replicas(domain)?;
        if shard >= self.shards.len() {
            return Err(ServeError::UnknownShard {
                shard,
                shards: self.shards.len(),
            });
        }
        if replicas.contains(shard) {
            return Err(ServeError::ReplicaAlreadyServing { domain, shard });
        }
        ServingEngine::probe_successor(&successor).map_err(ServeError::Engine)?;
        *pending = Some(PendingChange::AddReplica {
            domain,
            shard,
            staged: successor,
        });
        Ok(())
    }

    /// Take `domain`'s replica on `shard` out of rotation, reversibly.
    ///
    /// The map flips immediately (one `Arc` replacement — requests that
    /// pinned the old map finish against `shard`, which still holds the
    /// domain), and the replica enters the **draining** state: no new
    /// traffic, engine untouched, restorable in one call
    /// ([`restore_replica`](ShardRouter::restore_replica)) until
    /// [`remove_replica`](ShardRouter::remove_replica) finalizes.
    /// Refuses to unserve a domain ([`ServeError::LastReplica`]) and
    /// refuses while a staged change is pending (the staged change's
    /// commit was validated against the pre-drain topology).
    pub fn drain_replica(&self, domain: u64, shard: usize) -> Result<(), ServeError> {
        let pending = self
            .rebalance
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(p) = pending.as_ref() {
            return Err(ServeError::RebalanceInProgress { domain: p.domain() });
        }
        let map = self.map();
        let replicas = map
            .replicas_for(domain)
            .ok_or(ServeError::UnknownDomain { domain })?;
        if replicas.len() == 1 && replicas.contains(shard) {
            return Err(ServeError::LastReplica { domain, shard });
        }
        let flipped = map
            .with_replica_removed(domain, shard)
            .map_err(ServeError::Engine)?;
        *self.map.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(flipped);
        self.draining
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((domain, shard));
        Ok(())
    }

    /// Put a draining replica back into rotation: the reverse of
    /// [`drain_replica`](ShardRouter::drain_replica), one `Arc` flip.
    /// The engine never stopped holding the domain, so restored traffic
    /// serves immediately at the replica's published version.
    pub fn restore_replica(&self, domain: u64, shard: usize) -> Result<(), ServeError> {
        let pending = self
            .rebalance
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(p) = pending.as_ref() {
            return Err(ServeError::RebalanceInProgress { domain: p.domain() });
        }
        let mut draining = self.draining.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(at) = draining.iter().position(|&d| d == (domain, shard)) else {
            return Err(ServeError::ReplicaNotDraining { domain, shard });
        };
        let flipped = self
            .map()
            .with_replica_added(domain, shard)
            .map_err(ServeError::Engine)?;
        *self.map.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(flipped);
        draining.remove(at);
        Ok(())
    }

    /// Finalize a drained replica's removal: the `(domain, shard)` pair
    /// leaves the draining list and can no longer be restored. Pure
    /// bookkeeping — traffic already stopped at
    /// [`drain_replica`](ShardRouter::drain_replica), and the shard's
    /// engine is untouched (it may still serve *other* domains; the
    /// drained domain's rows simply never route there again).
    pub fn remove_replica(&self, domain: u64, shard: usize) -> Result<(), ServeError> {
        let mut draining = self.draining.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(at) = draining.iter().position(|&d| d == (domain, shard)) else {
            return Err(ServeError::ReplicaNotDraining { domain, shard });
        };
        draining.remove(at);
        Ok(())
    }

    /// Replicas currently draining (out of rotation, restorable), as
    /// `(domain, shard)` in drain order.
    pub fn draining_replicas(&self) -> Vec<(u64, usize)> {
        self.draining
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// [`ShardRouter::begin_rebalance`] with the successor shipped as
    /// snapshot bytes (parsed and validated before anything is staged).
    pub fn begin_rebalance_snapshot_bytes(
        &self,
        domain: u64,
        to_shard: usize,
        bytes: &[u8],
    ) -> Result<(), ServeError> {
        let successor = CerlEngine::load_bytes(bytes).map_err(ServeError::Engine)?;
        self.begin_rebalance(domain, to_shard, successor)
    }

    /// Commit the staged rebalance; returns the destination shard's new
    /// engine version.
    ///
    /// Ordering is the whole point: the staged engine is warm-swapped
    /// into the destination **before** the map flips, so from the moment
    /// a request can route the domain to the destination, the
    /// destination's published engine already holds it. The flip itself
    /// is a single `Arc` replacement — a request pins either the old map
    /// (routing to the source shard, which still answers) or the new one,
    /// never a torn mixture. If the final warm swap fails (the staged
    /// engine degraded between probe and publish — effectively never),
    /// the rebalance is cleared, the map is untouched, and the error is
    /// returned: equivalent to an abort.
    pub fn commit_rebalance(&self) -> Result<u64, ServeError> {
        let mut pending = self
            .rebalance
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let change = pending.take().ok_or(ServeError::NoRebalancePending)?;
        match change {
            PendingChange::Move {
                domain,
                from,
                to,
                staged,
            } => {
                // panic-ok: begin_move_replica validated `to` against the
                // fleet size before staging this change.
                let version = self.shards[to]
                    .engine
                    .swap_engine_warm(staged)
                    .map_err(ServeError::Engine)?;
                let flipped = self
                    .map()
                    .with_replica_replaced(domain, from, to)
                    .map_err(ServeError::Engine)?;
                *self.map.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(flipped);
                Ok(version)
            }
            PendingChange::AddReplica {
                domain,
                shard,
                staged,
            } => {
                // panic-ok: begin_add_replica validated `shard` against
                // the fleet size before staging this change.
                let version = self.shards[shard]
                    .engine
                    .swap_engine_warm(staged)
                    .map_err(ServeError::Engine)?;
                let flipped = self
                    .map()
                    .with_replica_added(domain, shard)
                    .map_err(ServeError::Engine)?;
                *self.map.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(flipped);
                Ok(version)
            }
        }
    }

    /// Drop the staged rebalance. Nothing was published during the
    /// window, so readers never observed the staged engine and the map is
    /// exactly as it was before [`ShardRouter::begin_rebalance`].
    pub fn abort_rebalance(&self) -> Result<(), ServeError> {
        self.rebalance
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .map(drop)
            .ok_or(ServeError::NoRebalancePending)
    }

    /// The in-flight replica move as `(domain, from_shard, to_shard)`,
    /// if one is staged (`None` while a replica *add* is staged — see
    /// [`ShardRouter::replica_add_in_progress`]).
    pub fn rebalance_in_progress(&self) -> Option<(u64, usize, usize)> {
        match self
            .rebalance
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            Some(PendingChange::Move {
                domain, from, to, ..
            }) => Some((*domain, *from, *to)),
            Some(PendingChange::AddReplica { .. }) | None => None,
        }
    }

    /// The in-flight replica add as `(domain, shard)`, if one is staged.
    pub fn replica_add_in_progress(&self) -> Option<(u64, usize)> {
        match self
            .rebalance
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            Some(PendingChange::AddReplica { domain, shard, .. }) => Some((*domain, *shard)),
            Some(PendingChange::Move { .. }) | None => None,
        }
    }

    /// The (warm) hot-swap of one shard: probe `engine` with one batch,
    /// then publish it as the shard's next version. Other shards are
    /// untouched; a successor that cannot serve is never published.
    pub fn swap_shard_engine(&self, shard: usize, engine: CerlEngine) -> Result<u64, ServeError> {
        Ok(self.shard(shard)?.swap_engine_warm(engine)?)
    }

    /// Warm snapshot swap of one shard (replica bytes shipped from a
    /// trainer): parsed, validated, and probed before the pointer moves.
    pub fn swap_shard_snapshot_bytes(&self, shard: usize, bytes: &[u8]) -> Result<u64, ServeError> {
        Ok(self.shard(shard)?.swap_snapshot_bytes_warm(bytes)?)
    }

    /// Snapshot bytes of one shard's current engine with the fleet's
    /// shard map embedded — what a registry should store so a restoring
    /// replica (or [`ShardRouter::from_snapshot_bytes`]) learns the
    /// topology too.
    pub fn shard_snapshot_bytes(&self, shard: usize) -> Result<Vec<u8>, ServeError> {
        let snapshot = self
            .shard(shard)?
            .current()
            .engine()
            .snapshot()
            .map_err(ServeError::Engine)?
            .with_shard_map(self.map().as_ref().clone())
            .with_shard_index(shard);
        snapshot.to_bytes().map_err(ServeError::Engine)
    }

    /// Direct handle to one shard's serving engine.
    pub fn shard(&self, shard: usize) -> Result<&Arc<ServingEngine>, ServeError> {
        Ok(&self.slot(shard)?.engine)
    }

    /// Number of shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Currently published engine version of every shard, by index.
    pub fn shard_versions(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.engine.version()).collect()
    }

    /// Pin the current routing topology (one `Arc` clone under a read
    /// lock held for nanoseconds). The returned map stays internally
    /// consistent for as long as the caller holds it; a concurrent
    /// rebalance commit only redirects *future* pins.
    pub fn map(&self) -> Arc<ShardMap> {
        self.map
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Fleet-level statistics: end-to-end latency over every routed
    /// request and per-version accounting aggregated across shards
    /// (shard versions are independent; attribute with
    /// [`ShardRouter::shard_stats`]).
    pub fn stats(&self) -> ServeStats {
        self.metrics.snapshot()
    }

    /// Per-shard load counters (requests and rows each shard's engine has
    /// served since fleet construction), by shard index.
    ///
    /// Both the batched and the unbatched serve paths execute on the
    /// shard's [`ServingEngine`], so these counters see all traffic —
    /// including scatter sub-batches — regardless of front-end. This is
    /// the snapshot the rebalance planner orders moves by
    /// (largest-imbalance-first).
    pub fn shard_loads(&self) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, slot)| {
                let stats = slot.engine.stats();
                ShardLoad {
                    shard,
                    requests: stats.requests_served,
                    rows: stats.rows_predicted,
                }
            })
            .collect()
    }

    /// Per-domain request/row counters (ascending by domain id, plus an
    /// aggregate `domain: None` row beyond the tracking table) — the
    /// hot-domain attribution signal: the domain whose rows dwarf the
    /// rest is the one to read-scale with
    /// [`begin_add_replica`](ShardRouter::begin_add_replica).
    pub fn domain_loads(&self) -> Vec<cerl_obs::DomainLoad> {
        self.domains.snapshot()
    }

    /// Number of engine versions still live across the fleet: every
    /// shard's published version plus superseded versions pinned by
    /// still-running requests (see
    /// [`ServingEngine::live_version_count`]).
    pub fn live_version_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.engine.live_version_count())
            .sum()
    }

    /// Export fleet-level serving metrics into `reg` under the
    /// `cerl_serve_*` namespace, plus per-shard load counters
    /// (`{shard="N"}`), each shard's published engine version, and the
    /// fleet-wide live-version gauge. Scrape-time work only — nothing
    /// here touches the request path.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        self.metrics.export_metrics("cerl_serve", reg);
        for load in self.shard_loads() {
            let shard = load.shard.to_string();
            reg.counter(
                "cerl_serve_shard_requests_total",
                "Requests served by each shard's engine (all front-ends).",
                &[("shard", &shard)],
                load.requests,
            );
            reg.counter(
                "cerl_serve_shard_rows_total",
                "Rows predicted by each shard's engine (all front-ends).",
                &[("shard", &shard)],
                load.rows,
            );
        }
        for (shard, version) in self.shard_versions().into_iter().enumerate() {
            let shard = shard.to_string();
            reg.gauge(
                "cerl_serve_shard_version",
                "Currently published engine version of each shard.",
                &[("shard", &shard)],
                version as f64,
            );
        }
        for load in self.domains.snapshot() {
            let domain = load
                .domain
                .map_or_else(|| "other".to_string(), |d| d.to_string());
            reg.counter(
                "cerl_serve_domain_requests_total",
                "Requests attributed to each domain (hot-domain signal; a scatter counts once \
                 per domain it touches; 'other' aggregates beyond the tracking table).",
                &[("domain", &domain)],
                load.requests,
            );
            reg.counter(
                "cerl_serve_domain_rows_total",
                "Rows served for each domain across all front-ends.",
                &[("domain", &domain)],
                load.rows,
            );
        }
        reg.gauge(
            "cerl_core_live_versions",
            "Engine versions still live across the fleet (published plus request-pinned).",
            &[],
            self.live_version_count() as f64,
        );
    }

    /// Fleet-level canary counters: cumulative request/rejection counts
    /// plus the raw end-to-end latency bucket counts, cheap enough to
    /// snapshot on every poll. Two snapshots bracket a canary window —
    /// see [`CanarySnapshot`] and the `orchestrator` module docs.
    pub fn canary_snapshot(&self) -> CanarySnapshot {
        self.metrics.canary_snapshot()
    }

    /// The per-shard scheduler's statistics (queue wait, batch shape,
    /// per-version counts), or `None` when the router is unbatched.
    pub fn shard_stats(&self, shard: usize) -> Result<Option<ServeStats>, ServeError> {
        Ok(self
            .slot(shard)?
            .scheduler
            .as_ref()
            .map(BatchScheduler::stats))
    }

    fn slot(&self, shard: usize) -> Result<&ShardSlot, ServeError> {
        self.shards.get(shard).ok_or(ServeError::UnknownShard {
            shard,
            shards: self.shards.len(),
        })
    }
}

/// Scatter one shard's result slice back into the merged output at the
/// rows it was demuxed from.
fn gather(out: &mut [f64], rows: &[usize], slice: &[f64]) {
    debug_assert_eq!(rows.len(), slice.len());
    for (&row, &value) in rows.iter().zip(slice) {
        // panic-ok: rows are original request-row indices and `out` was
        // sized to the request's row count by the caller.
        out[row] = value;
    }
}

fn invalid_fleet(reason: String) -> ServeError {
    ServeError::Engine(CerlError::InvalidConfig {
        field: "shard_map",
        reason,
    })
}

// Compile-time proof the router may be shared across request threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardRouter>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_core::config::CerlConfig;
    use cerl_core::engine::CerlEngineBuilder;
    use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};
    use std::time::Duration;

    fn quick_cfg() -> CerlConfig {
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 6;
        cfg.memory_size = 80;
        cfg
    }

    fn quick_stream(domains: usize) -> DomainStream {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            71,
        );
        DomainStream::synthetic(&gen, domains, 0, 71)
    }

    /// Shard i trained on domain i of the stream.
    fn shard_engines(stream: &DomainStream, shards: usize) -> Vec<CerlEngine> {
        (0..shards)
            .map(|d| {
                let mut engine = CerlEngineBuilder::new(quick_cfg())
                    .seed(13 + d as u64)
                    .build()
                    .unwrap();
                engine
                    .observe(&stream.domain(d).train, &stream.domain(d).val)
                    .unwrap();
                engine
            })
            .collect()
    }

    #[test]
    fn routes_domains_to_their_shards() {
        let stream = quick_stream(2);
        let engines = shard_engines(&stream, 2);
        let references = engines.clone();
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        let router = ShardRouter::new(engines, map).unwrap();

        for d in 0..2u64 {
            let x = &stream.domain(d as usize).test.x;
            let (version, routed) = router.predict_ite_versioned(d, x).unwrap();
            assert_eq!(version, 1);
            assert_eq!(routed, references[d as usize].predict_ite(x).unwrap());
        }
        let x = &stream.domain(0).test.x;
        assert!(matches!(
            router.predict_ite(99, x),
            Err(ServeError::UnknownDomain { domain: 99 })
        ));
        let stats = router.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.per_version_requests, vec![(1, 2)]);
        assert_eq!(router.shard_stats(0).unwrap(), None); // unbatched
        assert!(router.shard_stats(5).is_err());
    }

    #[test]
    fn per_shard_swap_leaves_other_shards_alone() {
        let stream = quick_stream(3);
        let engines = shard_engines(&stream, 2);
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        let router = ShardRouter::new(engines, map).unwrap();

        let x0 = &stream.domain(0).test.x;
        let before_shard0 = router.predict_ite(0, x0).unwrap();

        // Retrain shard 1 on a further domain and swap only that shard.
        let mut successor = CerlEngineBuilder::new(quick_cfg())
            .seed(14)
            .build()
            .unwrap();
        for d in [1usize, 2] {
            successor
                .observe(&stream.domain(d).train, &stream.domain(d).val)
                .unwrap();
        }
        let version = router.swap_shard_engine(1, successor.clone()).unwrap();
        assert_eq!(version, 2);
        assert_eq!(router.shard_versions(), vec![1, 2]);

        let x1 = &stream.domain(1).test.x;
        assert_eq!(
            router.predict_ite(1, x1).unwrap(),
            successor.predict_ite(x1).unwrap()
        );
        // Shard 0 still serves its original version bitwise-identically.
        assert_eq!(router.predict_ite(0, x0).unwrap(), before_shard0);

        // A broken successor is rejected and nothing changes.
        let untrained = CerlEngineBuilder::new(quick_cfg()).build().unwrap();
        assert!(router.swap_shard_engine(1, untrained).is_err());
        assert_eq!(router.shard_versions(), vec![1, 2]);
        assert!(matches!(
            router.swap_shard_engine(7, successor),
            Err(ServeError::UnknownShard {
                shard: 7,
                shards: 2
            })
        ));
    }

    #[test]
    fn snapshot_bytes_carry_the_shard_map_and_rebuild_the_fleet() {
        let stream = quick_stream(2);
        let engines = shard_engines(&stream, 2);
        let map = ShardMap::from_pairs(2, &[(0, 0), (7, 1)]).unwrap();
        let router = ShardRouter::new(engines, map.clone()).unwrap();

        let replicas: Vec<Vec<u8>> = (0..2)
            .map(|s| router.shard_snapshot_bytes(s).unwrap())
            .collect();
        // Each replica's snapshot embeds the fleet map.
        for bytes in &replicas {
            let snapshot = ModelSnapshot::from_bytes(bytes).unwrap();
            assert_eq!(snapshot.shard_map.as_ref(), Some(&map));
        }

        let rebuilt = ShardRouter::from_snapshot_bytes(&replicas, None).unwrap();
        assert_eq!(rebuilt.shard_count(), 2);
        let x = &stream.domain(0).test.x;
        assert_eq!(
            rebuilt.predict_ite(0, x).unwrap(),
            router.predict_ite(0, x).unwrap()
        );
        assert_eq!(rebuilt.route(7).unwrap(), 1);
        assert!(rebuilt.route(1).is_err());

        // Registry fetch order must not matter: each replica carries its
        // shard index, so a reversed fleet still routes domain 0 to the
        // engine trained for it.
        let reversed: Vec<Vec<u8>> = replicas.iter().rev().cloned().collect();
        let reordered = ShardRouter::from_snapshot_bytes(&reversed, None).unwrap();
        assert_eq!(
            reordered.predict_ite(0, x).unwrap(),
            router.predict_ite(0, x).unwrap()
        );
        // Two replicas claiming the same shard cannot build a fleet.
        let duplicated = vec![replicas[0].clone(), replicas[0].clone()];
        assert!(ShardRouter::from_snapshot_bytes(&duplicated, None).is_err());

        // A fleet whose snapshots carry no map cannot be rebuilt blind.
        let bare = router
            .shard(0)
            .unwrap()
            .current()
            .engine()
            .save_bytes()
            .unwrap();
        assert!(ShardRouter::from_snapshot_bytes(&[bare], None).is_err());
    }

    #[test]
    fn mismatched_map_and_fleet_size_is_rejected() {
        let stream = quick_stream(1);
        let engines = shard_engines(&stream, 1);
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        assert!(ShardRouter::new(engines, map).is_err());
        let map = ShardMap::from_pairs(1, &[(0, 0)]).unwrap();
        assert!(ShardRouter::new(Vec::new(), map).is_err());
    }

    /// Two shards holding clones of the same engine: scatter output must
    /// be bitwise what the single engine answers for the mixed rows.
    #[test]
    fn scatter_merges_subbatches_back_into_submission_order() {
        let stream = quick_stream(1);
        let mut reference = CerlEngineBuilder::new(quick_cfg())
            .seed(13)
            .build()
            .unwrap();
        reference
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1), (5, 1)]).unwrap();
        let router =
            ShardRouter::new(vec![reference.clone(), reference.clone()], map.clone()).unwrap();

        let x = stream.domain(0).test.x.slice_rows(0, 12);
        let tags: Vec<u64> = (0..12).map(|i| [0u64, 1, 5, 1][i % 4]).collect();
        let response = router.predict_ite_scatter_versioned(&tags, &x).unwrap();
        let expected = reference.predict_ite(&x).unwrap();
        assert_eq!(response.ite.len(), expected.len());
        for (i, (a, b)) in response.ite.iter().zip(&expected).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
        }
        assert_eq!(response.shard_versions, vec![(0, 1), (1, 1)]);

        // A single-domain scatter touches one shard only.
        let lone = router.predict_ite_scatter_versioned(&[5; 12], &x).unwrap();
        assert_eq!(lone.shard_versions, vec![(1, 1)]);
        assert_eq!(lone.ite, expected);

        // Batched router: identical bits through the scheduler fan-out.
        let batched = ShardRouter::with_batching(
            vec![reference.clone(), reference],
            map,
            BatchConfig {
                max_wait: Duration::from_millis(2),
                ..BatchConfig::default()
            },
        )
        .unwrap();
        let via_schedulers = batched.predict_ite_scatter(&tags, &x).unwrap();
        for (a, b) in via_schedulers.iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for shard in 0..2 {
            let stats = batched.shard_stats(shard).unwrap().expect("batched");
            assert_eq!(stats.requests, 1, "each shard saw one sub-batch");
        }

        // Typed failures: unknown tag, tag/row mismatch, empty request.
        assert!(matches!(
            router.predict_ite_scatter(&[9; 12], &x),
            Err(ServeError::UnknownDomain { domain: 9 })
        ));
        assert!(matches!(
            router.predict_ite_scatter(&tags[..3], &x),
            Err(ServeError::DomainTagMismatch { rows: 12, tags: 3 })
        ));
        assert!(matches!(
            router.predict_ite_scatter(&[], &Matrix::zeros(0, x.cols())),
            Err(ServeError::Engine(CerlError::EmptyInput { .. }))
        ));

        let stats = router.stats();
        assert_eq!(stats.scatter_requests, 2);
        assert_eq!(stats.scatter_subrequests, 3);
        assert_eq!(stats.mean_shards_per_scatter(), 1.5);
        assert_eq!(stats.rejected, 3);
        // Scatter counts once per participating shard in the version
        // table: 3 sub-batches, all on version 1.
        assert_eq!(stats.per_version_requests, vec![(1, 3)]);
    }

    #[test]
    fn rebalance_commit_publishes_destination_before_flipping_the_map() {
        let stream = quick_stream(2);
        let engines = shard_engines(&stream, 2);
        let references = engines.clone();
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 0), (2, 1)]).unwrap();
        let router = ShardRouter::new(engines, map).unwrap();
        let x = stream.domain(1).test.x.slice_rows(0, 6);

        // Stage: destination's successor holds domain 1 (here: shard 1's
        // engine retrained on it).
        let mut successor = references[1].clone();
        successor
            .observe(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        router.begin_rebalance(1, 1, successor.clone()).unwrap();
        assert_eq!(router.rebalance_in_progress(), Some((1, 0, 1)));

        // Dual-route window: the map is untouched, the source still
        // answers, the destination still serves its old version.
        assert_eq!(router.route(1).unwrap(), 0);
        assert_eq!(
            router.predict_ite(1, &x).unwrap(),
            references[0].predict_ite(&x).unwrap()
        );
        assert_eq!(router.shard_versions(), vec![1, 1]);

        // A second begin is refused while one is staged.
        assert!(matches!(
            router.begin_rebalance(2, 0, references[0].clone()),
            Err(ServeError::RebalanceInProgress { domain: 1 })
        ));

        let version = router.commit_rebalance().unwrap();
        assert_eq!(version, 2);
        assert_eq!(router.shard_versions(), vec![1, 2]);
        assert_eq!(router.route(1).unwrap(), 1);
        assert_eq!(
            router.predict_ite(1, &x).unwrap(),
            successor.predict_ite(&x).unwrap()
        );
        // Domain 0 stayed on the source, bitwise untouched.
        let x0 = stream.domain(0).test.x.slice_rows(0, 6);
        assert_eq!(
            router.predict_ite(0, &x0).unwrap(),
            references[0].predict_ite(&x0).unwrap()
        );
        assert_eq!(router.rebalance_in_progress(), None);
        assert!(matches!(
            router.commit_rebalance(),
            Err(ServeError::NoRebalancePending)
        ));

        // The rebalanced topology rides in fresh snapshot bytes (v2
        // round-trip) and rebuilds a fleet that routes the new way.
        let replicas: Vec<Vec<u8>> = (0..2)
            .map(|s| router.shard_snapshot_bytes(s).unwrap())
            .collect();
        let rebuilt = ShardRouter::from_snapshot_bytes(&replicas, None).unwrap();
        assert_eq!(rebuilt.route(1).unwrap(), 1);
        assert_eq!(
            rebuilt.predict_ite(1, &x).unwrap(),
            successor.predict_ite(&x).unwrap()
        );
    }

    #[test]
    fn rebalance_begin_validates_and_abort_rolls_back_cleanly() {
        let stream = quick_stream(2);
        let engines = shard_engines(&stream, 2);
        let references = engines.clone();
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 0), (2, 1)]).unwrap();
        let router = ShardRouter::new(engines, map).unwrap();

        // Bad begins: unmapped domain, out-of-range shard, no-op move,
        // successor that cannot serve. None of them stage anything.
        assert!(matches!(
            router.begin_rebalance(9, 1, references[0].clone()),
            Err(ServeError::UnknownDomain { domain: 9 })
        ));
        assert!(matches!(
            router.begin_rebalance(1, 5, references[0].clone()),
            Err(ServeError::UnknownShard {
                shard: 5,
                shards: 2
            })
        ));
        assert!(router.begin_rebalance(1, 0, references[0].clone()).is_err());
        let untrained = CerlEngineBuilder::new(quick_cfg()).build().unwrap();
        assert!(matches!(
            router.begin_rebalance(1, 1, untrained),
            Err(ServeError::Engine(CerlError::NotTrained))
        ));
        assert_eq!(router.rebalance_in_progress(), None);

        // Stage a real move, then abort: map, versions, and answers are
        // exactly as before the begin.
        let x = stream.domain(1).test.x.slice_rows(0, 6);
        let before = router.predict_ite(1, &x).unwrap();
        router.begin_rebalance(1, 1, references[0].clone()).unwrap();
        router.abort_rebalance().unwrap();
        assert_eq!(router.rebalance_in_progress(), None);
        assert_eq!(router.route(1).unwrap(), 0);
        assert_eq!(router.shard_versions(), vec![1, 1]);
        assert_eq!(router.predict_ite(1, &x).unwrap(), before);
        assert!(matches!(
            router.abort_rebalance(),
            Err(ServeError::NoRebalancePending)
        ));

        // The snapshot-bytes staging path stages (and aborts) too.
        let bytes = references[1].save_bytes().unwrap();
        router.begin_rebalance_snapshot_bytes(1, 1, &bytes).unwrap();
        assert_eq!(router.rebalance_in_progress(), Some((1, 0, 1)));
        router.abort_rebalance().unwrap();
    }

    #[test]
    fn fleet_restore_size_mismatch_names_expected_vs_found() {
        let stream = quick_stream(3);
        let engines = shard_engines(&stream, 3);
        let map = ShardMap::from_pairs(3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        let router = ShardRouter::new(engines, map).unwrap();
        // Only two of the three replicas reach the restore.
        let partial: Vec<Vec<u8>> = (0..2)
            .map(|s| router.shard_snapshot_bytes(s).unwrap())
            .collect();
        match ShardRouter::from_snapshot_bytes(&partial, None) {
            Err(
                e @ ServeError::FleetSizeMismatch {
                    expected: 3,
                    found: 2,
                },
            ) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("3 shard(s)") && msg.contains("2 replica snapshot(s)"),
                    "{msg}"
                );
            }
            other => panic!("expected FleetSizeMismatch, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn conflicting_replica_maps_name_the_moved_domain() {
        let stream = quick_stream(2);
        let engines = shard_engines(&stream, 2);
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 0), (2, 1)]).unwrap();
        let router = ShardRouter::new(engines, map).unwrap();
        let before = router.shard_snapshot_bytes(0).unwrap();
        // A registry captured replica 1 after a rebalance of domain 1.
        let mut successor = router.shard(1).unwrap().current().engine().clone();
        successor
            .observe(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        router.begin_rebalance(1, 1, successor).unwrap();
        router.commit_rebalance().unwrap();
        let after = router.shard_snapshot_bytes(1).unwrap();
        match ShardRouter::from_snapshot_bytes(&[before, after], None) {
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("domain 1 moved shard 0 -> 1"),
                    "conflict should name the move: {msg}"
                );
            }
            Ok(_) => panic!("conflicting maps must not rebuild a fleet"),
        }
    }

    #[test]
    fn batched_router_serves_through_shard_schedulers() {
        let stream = quick_stream(2);
        let engines = shard_engines(&stream, 2);
        let references = engines.clone();
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        let router = ShardRouter::with_batching(
            engines,
            map,
            BatchConfig {
                max_wait: Duration::from_millis(5),
                ..BatchConfig::default()
            },
        )
        .unwrap();

        for d in 0..2u64 {
            let x = stream.domain(d as usize).test.x.slice_rows(0, 6);
            let routed = router.predict_ite(d, &x).unwrap();
            assert_eq!(routed, references[d as usize].predict_ite(&x).unwrap());
        }
        // The shard schedulers saw the traffic and measured queue wait.
        for s in 0..2 {
            let stats = router.shard_stats(s).unwrap().expect("batched");
            assert_eq!(stats.requests, 1);
            assert_eq!(stats.queue_wait.count, 1);
        }
        assert_eq!(router.stats().requests, 2);
    }

    /// One engine cloned across `shards` replicas — the replicated-fleet
    /// fixture: every replica publishes the identical model, so any
    /// placement must return bitwise the unreplicated engine's rows.
    fn replicated_fleet(shards: usize) -> (DomainStream, CerlEngine, ShardRouter) {
        let stream = quick_stream(1);
        let mut reference = CerlEngineBuilder::new(quick_cfg())
            .seed(13)
            .build()
            .unwrap();
        reference
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        let map = ShardMap::from_replicas(shards, &[(0, (0..shards).collect())]).unwrap();
        assert!(map.is_replicated());
        let router = ShardRouter::new(vec![reference.clone(); shards], map).unwrap();
        (stream, reference, router)
    }

    #[test]
    fn replicated_domain_is_bitwise_identical_under_every_policy() {
        let (stream, reference, router) = replicated_fleet(3);
        let x = stream.domain(0).test.x.slice_rows(0, 24);
        let expected = reference.predict_ite(&x).unwrap();
        assert_eq!(router.replicas(0).unwrap().shards(), &[0, 1, 2]);
        assert_eq!(router.route(0).unwrap(), 0, "primary is the smallest id");

        let policies: Vec<Arc<dyn RoutePolicy>> = vec![
            Arc::new(LeastLoaded),
            Arc::new(crate::policy::RoundRobin::new()),
            Arc::new(crate::policy::VersionPinned::new(1)),
        ];
        for policy in policies {
            router.set_route_policy(Arc::clone(&policy));
            assert_eq!(router.route_policy().name(), policy.name());
            for _ in 0..3 {
                let direct = router.predict_ite(0, &x).unwrap();
                let response = router
                    .predict_ite_scatter_versioned(&vec![0; x.rows()], &x)
                    .unwrap();
                for (i, (a, b)) in direct.iter().zip(&expected).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{} row {i}", policy.name());
                }
                for (i, (a, b)) in response.ite.iter().zip(&expected).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{} row {i}", policy.name());
                }
                // Replicated request: the attribution trail names the
                // replica the policy placed the sub-batch on.
                assert_eq!(response.placements.len(), 1);
                let (domain, shard) = response.placements[0];
                assert_eq!(domain, 0);
                assert!(router.replicas(0).unwrap().contains(shard));
                assert_eq!(response.shard_versions, vec![(shard, 1)]);
            }
        }
        // Spreading happened: every replica served some of the traffic
        // (RoundRobin rotates; LeastLoaded steers to the coolest).
        let loads = router.shard_loads();
        assert!(
            loads.iter().all(|l| l.rows > 0),
            "all replicas should have served rows: {loads:?}"
        );
        // ...and the hot-domain counters attributed all of it to domain 0.
        let domains = router.domain_loads();
        assert_eq!(domains.len(), 1);
        assert_eq!(domains[0].domain, Some(0));
        assert_eq!(domains[0].requests, 18, "9 direct + 9 scatter groups");
        assert_eq!(domains[0].rows, 18 * 24);
    }

    #[test]
    fn unreplicated_requests_carry_no_placement_trail() {
        let stream = quick_stream(2);
        let engines = shard_engines(&stream, 2);
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        let router = ShardRouter::new(engines, map).unwrap();
        let x = stream.domain(0).test.x.slice_rows(0, 8);
        let response = router
            .predict_ite_scatter_versioned(&[0, 1, 0, 1, 0, 1, 0, 1], &x)
            .unwrap();
        assert!(
            response.placements.is_empty(),
            "attribution follows the map when no policy had a choice"
        );
        // Per-domain counters still attribute the traffic.
        let domains = router.domain_loads();
        assert_eq!(domains.len(), 2);
        assert_eq!((domains[0].domain, domains[0].rows), (Some(0), 4));
        assert_eq!((domains[1].domain, domains[1].rows), (Some(1), 4));
    }

    #[test]
    fn stray_policy_answers_degrade_to_the_primary() {
        /// Always answers a shard outside every replica-set.
        #[derive(Debug)]
        struct Hostile;
        impl RoutePolicy for Hostile {
            fn choose(
                &self,
                _domain: u64,
                _rows: usize,
                _replicas: &ReplicaSet,
                _ctx: &RouteContext<'_>,
            ) -> usize {
                usize::MAX
            }
            fn name(&self) -> &'static str {
                "hostile"
            }
        }
        let (stream, reference, router) = replicated_fleet(2);
        router.set_route_policy(Arc::new(Hostile));
        let x = stream.domain(0).test.x.slice_rows(0, 6);
        let response = router.predict_ite_scatter_versioned(&[0; 6], &x).unwrap();
        assert_eq!(response.ite, reference.predict_ite(&x).unwrap());
        assert_eq!(response.placements, vec![(0, 0)], "clamped to the primary");
    }

    #[test]
    fn replica_lifecycle_add_drain_restore_remove() {
        let stream = quick_stream(1);
        let mut reference = CerlEngineBuilder::new(quick_cfg())
            .seed(13)
            .build()
            .unwrap();
        reference
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        // A 2-replica set {0, 1}; shard 2 is idle capacity to add into.
        let map = ShardMap::from_replicas(3, &[(0, vec![0, 1])]).unwrap();
        let router = ShardRouter::new(vec![reference.clone(); 3], map).unwrap();
        let x = stream.domain(0).test.x.slice_rows(0, 10);
        let expected = reference.predict_ite(&x).unwrap();

        // -- add: stage → probe → commit publishes then flips the map.
        assert!(matches!(
            router.begin_add_replica(0, 1, reference.clone()),
            Err(ServeError::ReplicaAlreadyServing {
                domain: 0,
                shard: 1
            })
        ));
        router.begin_add_replica(0, 2, reference.clone()).unwrap();
        assert_eq!(router.replica_add_in_progress(), Some((0, 2)));
        assert_eq!(router.rebalance_in_progress(), None);
        // Staged, not published: the map still reads {0, 1}.
        assert_eq!(router.replicas(0).unwrap().shards(), &[0, 1]);
        assert!(matches!(
            router.drain_replica(0, 1),
            Err(ServeError::RebalanceInProgress { domain: 0 })
        ));
        router.commit_rebalance().unwrap();
        assert_eq!(router.replicas(0).unwrap().shards(), &[0, 1, 2]);
        assert_eq!(router.predict_ite(0, &x).unwrap(), expected);

        // -- drain: reversible removal from rotation; engine untouched.
        router.drain_replica(0, 2).unwrap();
        assert_eq!(router.replicas(0).unwrap().shards(), &[0, 1]);
        assert_eq!(router.draining_replicas(), vec![(0, 2)]);
        assert_eq!(router.predict_ite(0, &x).unwrap(), expected);
        // -- restore: back into rotation.
        router.restore_replica(0, 2).unwrap();
        assert_eq!(router.replicas(0).unwrap().shards(), &[0, 1, 2]);
        assert!(router.draining_replicas().is_empty());
        assert!(matches!(
            router.restore_replica(0, 2),
            Err(ServeError::ReplicaNotDraining {
                domain: 0,
                shard: 2
            })
        ));

        // -- remove requires a prior drain; then it is final bookkeeping.
        assert!(matches!(
            router.remove_replica(0, 2),
            Err(ServeError::ReplicaNotDraining {
                domain: 0,
                shard: 2
            })
        ));
        router.drain_replica(0, 2).unwrap();
        router.remove_replica(0, 2).unwrap();
        assert!(router.draining_replicas().is_empty());
        assert_eq!(router.replicas(0).unwrap().shards(), &[0, 1]);

        // -- the last replica can never be drained.
        router.drain_replica(0, 1).unwrap();
        assert!(matches!(
            router.drain_replica(0, 0),
            Err(ServeError::LastReplica {
                domain: 0,
                shard: 0
            })
        ));
        assert_eq!(router.predict_ite(0, &x).unwrap(), expected);
    }
}
