//! Shard-per-domain routing: one serving fleet, N independently
//! hot-swappable engines.
//!
//! The paper's deployment is inherently sharded: observational data
//! arrives *per domain* (a city, a cohort, a geography), and each
//! domain's estimator retrains on its own cadence. [`ShardRouter`] fronts
//! N [`ServingEngine`] shards with a
//! [`ShardMap`](cerl_core::snapshot::ShardMap) — the `domain → shard`
//! assignment that also travels inside snapshot metadata
//! ([`ModelSnapshot::shard_map`](cerl_core::snapshot::ModelSnapshot)) so
//! a replica restoring from bytes learns the fleet topology along with
//! its weights:
//!
//! * **Routing.** [`ShardRouter::predict_ite`] resolves the request's
//!   domain id through the map and serves it from that shard — through
//!   the shard's [`BatchScheduler`] when the router was built
//!   [`with_batching`](ShardRouter::with_batching), directly otherwise.
//!   Unknown domains fail fast with [`ServeError::UnknownDomain`].
//! * **Independent hot swaps.** [`ShardRouter::swap_shard_engine`] /
//!   [`ShardRouter::swap_shard_snapshot_bytes`] publish a new version on
//!   one shard (with the warm-up probe of
//!   [`swap_engine_warm`](ServingEngine::swap_engine_warm) — a broken
//!   successor is never published) while every other shard keeps serving
//!   undisturbed.
//! * **Observability.** The router keeps its own [`ServeStats`]
//!   (end-to-end latency, per-version request accounting across the
//!   fleet); [`ShardRouter::shard_stats`] exposes each shard scheduler's
//!   queue-wait and batch-shape numbers for canary watching.

use crate::error::ServeError;
use crate::scheduler::{BatchConfig, BatchScheduler, ServeMetrics, ServeStats};
use cerl_core::engine::CerlEngine;
use cerl_core::error::CerlError;
use cerl_core::serving::ServingEngine;
use cerl_core::snapshot::{ModelSnapshot, ShardMap};
use cerl_math::Matrix;
use std::sync::Arc;
use std::time::Instant;

/// One shard of the fleet: the hot-swappable engine plus its optional
/// batching front-end.
struct ShardSlot {
    engine: Arc<ServingEngine>,
    scheduler: Option<BatchScheduler>,
}

/// Domain-keyed router over N independently hot-swappable serving shards
/// (see the [module docs](self)).
pub struct ShardRouter {
    shards: Vec<ShardSlot>,
    map: ShardMap,
    metrics: Arc<ServeMetrics>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.shards.len())
            .field("domains", &self.map.len())
            .field(
                "batched",
                &self.shards.first().is_some_and(|s| s.scheduler.is_some()),
            )
            .finish_non_exhaustive()
    }
}

impl ShardRouter {
    /// Build an unbatched router: requests go straight to their shard's
    /// engine. `engines[i]` serves shard `i`; the map must declare
    /// exactly `engines.len()` shards.
    pub fn new(engines: Vec<CerlEngine>, map: ShardMap) -> Result<Self, ServeError> {
        Self::build(engines, map, None)
    }

    /// Build a router with a [`BatchScheduler`] (one per shard, same
    /// knobs) coalescing each shard's traffic.
    pub fn with_batching(
        engines: Vec<CerlEngine>,
        map: ShardMap,
        batch: BatchConfig,
    ) -> Result<Self, ServeError> {
        Self::build(engines, map, Some(batch))
    }

    /// Rebuild a fleet from per-shard snapshot bytes. The shard map is
    /// read from the snapshot metadata (every replica that carries one
    /// must agree), and when the replicas also carry their shard index
    /// ([`ShardRouter::shard_snapshot_bytes`] always embeds it) each one
    /// is seated at that index, so the order replicas were fetched from
    /// a registry in does not matter. Index-free replicas (all or none —
    /// mixing is rejected) are seated positionally: shard `i` restores
    /// from `replicas[i]`.
    pub fn from_snapshot_bytes(
        replicas: &[Vec<u8>],
        batch: Option<BatchConfig>,
    ) -> Result<Self, ServeError> {
        let mut seats: Vec<Option<CerlEngine>> = (0..replicas.len()).map(|_| None).collect();
        let mut positional = Vec::new();
        let mut map: Option<ShardMap> = None;
        for bytes in replicas {
            let snapshot = ModelSnapshot::from_bytes(bytes).map_err(ServeError::Engine)?;
            match (&map, &snapshot.shard_map) {
                (None, Some(found)) => map = Some(found.clone()),
                (Some(agreed), Some(found)) if agreed != found => {
                    return Err(invalid_fleet(
                        "replica snapshots carry conflicting shard maps".into(),
                    ))
                }
                _ => {}
            }
            let shard_index = snapshot.shard_index;
            let engine = CerlEngine::from_snapshot(snapshot).map_err(ServeError::Engine)?;
            match shard_index {
                Some(shard) => {
                    let seat = seats.get_mut(shard).ok_or_else(|| {
                        invalid_fleet(format!(
                            "replica claims shard {shard} but only {} replica(s) were provided",
                            replicas.len()
                        ))
                    })?;
                    if seat.is_some() {
                        return Err(invalid_fleet(format!("two replicas claim shard {shard}")));
                    }
                    *seat = Some(engine);
                }
                None => positional.push(engine),
            }
        }
        let map =
            map.ok_or_else(|| invalid_fleet("no replica snapshot carries a shard map".into()))?;
        let engines = if positional.len() == replicas.len() {
            positional
        } else if positional.is_empty() {
            // Every replica named its seat; seats.len() == replicas.len()
            // and no seat was claimed twice, so all are filled.
            seats.into_iter().flatten().collect()
        } else {
            return Err(invalid_fleet(
                "some replica snapshots carry a shard index and some do not".into(),
            ));
        };
        Self::build(engines, map, batch)
    }

    fn build(
        engines: Vec<CerlEngine>,
        map: ShardMap,
        batch: Option<BatchConfig>,
    ) -> Result<Self, ServeError> {
        if engines.is_empty() {
            return Err(invalid_fleet("a fleet needs at least one shard".into()));
        }
        if map.shard_count() != engines.len() {
            return Err(invalid_fleet(format!(
                "shard map declares {} shard(s) but {} engine(s) were provided",
                map.shard_count(),
                engines.len()
            )));
        }
        let shards = engines
            .into_iter()
            .map(|engine| {
                let engine = Arc::new(ServingEngine::new(engine));
                let scheduler = batch
                    .as_ref()
                    .map(|cfg| BatchScheduler::new(Arc::clone(&engine), cfg.clone()));
                ShardSlot { engine, scheduler }
            })
            .collect();
        Ok(Self {
            shards,
            map,
            metrics: Arc::new(ServeMetrics::default()),
        })
    }

    /// Resolve the shard serving `domain`.
    pub fn route(&self, domain: u64) -> Result<usize, ServeError> {
        self.map
            .shard_for(domain)
            .ok_or(ServeError::UnknownDomain { domain })
    }

    /// Predicted ITEs for one request belonging to `domain`.
    pub fn predict_ite(&self, domain: u64, x: &Matrix) -> Result<Vec<f64>, ServeError> {
        Ok(self.predict_ite_versioned(domain, x)?.1)
    }

    /// Like [`ShardRouter::predict_ite`], also reporting the engine
    /// version (of the serving shard) that answered.
    pub fn predict_ite_versioned(
        &self,
        domain: u64,
        x: &Matrix,
    ) -> Result<(u64, Vec<f64>), ServeError> {
        let start = Instant::now();
        let outcome = self.route(domain).and_then(|shard| {
            let slot = &self.shards[shard];
            match &slot.scheduler {
                Some(scheduler) => scheduler.predict_ite_versioned(x),
                None => slot
                    .engine
                    .predict_ite_versioned(x)
                    .map_err(ServeError::from),
            }
        });
        match outcome {
            Ok((version, ite)) => {
                self.metrics.record_response(version, start.elapsed());
                Ok((version, ite))
            }
            Err(e) => {
                self.metrics.record_rejection();
                Err(e)
            }
        }
    }

    /// The (warm) hot-swap of one shard: probe `engine` with one batch,
    /// then publish it as the shard's next version. Other shards are
    /// untouched; a successor that cannot serve is never published.
    pub fn swap_shard_engine(&self, shard: usize, engine: CerlEngine) -> Result<u64, ServeError> {
        Ok(self.shard(shard)?.swap_engine_warm(engine)?)
    }

    /// Warm snapshot swap of one shard (replica bytes shipped from a
    /// trainer): parsed, validated, and probed before the pointer moves.
    pub fn swap_shard_snapshot_bytes(&self, shard: usize, bytes: &[u8]) -> Result<u64, ServeError> {
        Ok(self.shard(shard)?.swap_snapshot_bytes_warm(bytes)?)
    }

    /// Snapshot bytes of one shard's current engine with the fleet's
    /// shard map embedded — what a registry should store so a restoring
    /// replica (or [`ShardRouter::from_snapshot_bytes`]) learns the
    /// topology too.
    pub fn shard_snapshot_bytes(&self, shard: usize) -> Result<Vec<u8>, ServeError> {
        let snapshot = self
            .shard(shard)?
            .current()
            .engine()
            .snapshot()
            .map_err(ServeError::Engine)?
            .with_shard_map(self.map.clone())
            .with_shard_index(shard);
        snapshot.to_bytes().map_err(ServeError::Engine)
    }

    /// Direct handle to one shard's serving engine.
    pub fn shard(&self, shard: usize) -> Result<&Arc<ServingEngine>, ServeError> {
        Ok(&self.slot(shard)?.engine)
    }

    /// Number of shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Currently published engine version of every shard, by index.
    pub fn shard_versions(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.engine.version()).collect()
    }

    /// The routing map this fleet was built with.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Fleet-level statistics: end-to-end latency over every routed
    /// request and per-version accounting aggregated across shards
    /// (shard versions are independent; attribute with
    /// [`ShardRouter::shard_stats`]).
    pub fn stats(&self) -> ServeStats {
        self.metrics.snapshot()
    }

    /// The per-shard scheduler's statistics (queue wait, batch shape,
    /// per-version counts), or `None` when the router is unbatched.
    pub fn shard_stats(&self, shard: usize) -> Result<Option<ServeStats>, ServeError> {
        Ok(self
            .slot(shard)?
            .scheduler
            .as_ref()
            .map(BatchScheduler::stats))
    }

    fn slot(&self, shard: usize) -> Result<&ShardSlot, ServeError> {
        self.shards.get(shard).ok_or(ServeError::UnknownShard {
            shard,
            shards: self.shards.len(),
        })
    }
}

fn invalid_fleet(reason: String) -> ServeError {
    ServeError::Engine(CerlError::InvalidConfig {
        field: "shard_map",
        reason,
    })
}

// Compile-time proof the router may be shared across request threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardRouter>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_core::config::CerlConfig;
    use cerl_core::engine::CerlEngineBuilder;
    use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};
    use std::time::Duration;

    fn quick_cfg() -> CerlConfig {
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 6;
        cfg.memory_size = 80;
        cfg
    }

    fn quick_stream(domains: usize) -> DomainStream {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            71,
        );
        DomainStream::synthetic(&gen, domains, 0, 71)
    }

    /// Shard i trained on domain i of the stream.
    fn shard_engines(stream: &DomainStream, shards: usize) -> Vec<CerlEngine> {
        (0..shards)
            .map(|d| {
                let mut engine = CerlEngineBuilder::new(quick_cfg())
                    .seed(13 + d as u64)
                    .build()
                    .unwrap();
                engine
                    .observe(&stream.domain(d).train, &stream.domain(d).val)
                    .unwrap();
                engine
            })
            .collect()
    }

    #[test]
    fn routes_domains_to_their_shards() {
        let stream = quick_stream(2);
        let engines = shard_engines(&stream, 2);
        let references = engines.clone();
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        let router = ShardRouter::new(engines, map).unwrap();

        for d in 0..2u64 {
            let x = &stream.domain(d as usize).test.x;
            let (version, routed) = router.predict_ite_versioned(d, x).unwrap();
            assert_eq!(version, 1);
            assert_eq!(routed, references[d as usize].predict_ite(x).unwrap());
        }
        let x = &stream.domain(0).test.x;
        assert!(matches!(
            router.predict_ite(99, x),
            Err(ServeError::UnknownDomain { domain: 99 })
        ));
        let stats = router.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.per_version_requests, vec![(1, 2)]);
        assert_eq!(router.shard_stats(0).unwrap(), None); // unbatched
        assert!(router.shard_stats(5).is_err());
    }

    #[test]
    fn per_shard_swap_leaves_other_shards_alone() {
        let stream = quick_stream(3);
        let engines = shard_engines(&stream, 2);
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        let router = ShardRouter::new(engines, map).unwrap();

        let x0 = &stream.domain(0).test.x;
        let before_shard0 = router.predict_ite(0, x0).unwrap();

        // Retrain shard 1 on a further domain and swap only that shard.
        let mut successor = CerlEngineBuilder::new(quick_cfg())
            .seed(14)
            .build()
            .unwrap();
        for d in [1usize, 2] {
            successor
                .observe(&stream.domain(d).train, &stream.domain(d).val)
                .unwrap();
        }
        let version = router.swap_shard_engine(1, successor.clone()).unwrap();
        assert_eq!(version, 2);
        assert_eq!(router.shard_versions(), vec![1, 2]);

        let x1 = &stream.domain(1).test.x;
        assert_eq!(
            router.predict_ite(1, x1).unwrap(),
            successor.predict_ite(x1).unwrap()
        );
        // Shard 0 still serves its original version bitwise-identically.
        assert_eq!(router.predict_ite(0, x0).unwrap(), before_shard0);

        // A broken successor is rejected and nothing changes.
        let untrained = CerlEngineBuilder::new(quick_cfg()).build().unwrap();
        assert!(router.swap_shard_engine(1, untrained).is_err());
        assert_eq!(router.shard_versions(), vec![1, 2]);
        assert!(matches!(
            router.swap_shard_engine(7, successor),
            Err(ServeError::UnknownShard {
                shard: 7,
                shards: 2
            })
        ));
    }

    #[test]
    fn snapshot_bytes_carry_the_shard_map_and_rebuild_the_fleet() {
        let stream = quick_stream(2);
        let engines = shard_engines(&stream, 2);
        let map = ShardMap::from_pairs(2, &[(0, 0), (7, 1)]).unwrap();
        let router = ShardRouter::new(engines, map.clone()).unwrap();

        let replicas: Vec<Vec<u8>> = (0..2)
            .map(|s| router.shard_snapshot_bytes(s).unwrap())
            .collect();
        // Each replica's snapshot embeds the fleet map.
        for bytes in &replicas {
            let snapshot = ModelSnapshot::from_bytes(bytes).unwrap();
            assert_eq!(snapshot.shard_map.as_ref(), Some(&map));
        }

        let rebuilt = ShardRouter::from_snapshot_bytes(&replicas, None).unwrap();
        assert_eq!(rebuilt.shard_count(), 2);
        let x = &stream.domain(0).test.x;
        assert_eq!(
            rebuilt.predict_ite(0, x).unwrap(),
            router.predict_ite(0, x).unwrap()
        );
        assert_eq!(rebuilt.route(7).unwrap(), 1);
        assert!(rebuilt.route(1).is_err());

        // Registry fetch order must not matter: each replica carries its
        // shard index, so a reversed fleet still routes domain 0 to the
        // engine trained for it.
        let reversed: Vec<Vec<u8>> = replicas.iter().rev().cloned().collect();
        let reordered = ShardRouter::from_snapshot_bytes(&reversed, None).unwrap();
        assert_eq!(
            reordered.predict_ite(0, x).unwrap(),
            router.predict_ite(0, x).unwrap()
        );
        // Two replicas claiming the same shard cannot build a fleet.
        let duplicated = vec![replicas[0].clone(), replicas[0].clone()];
        assert!(ShardRouter::from_snapshot_bytes(&duplicated, None).is_err());

        // A fleet whose snapshots carry no map cannot be rebuilt blind.
        let bare = router
            .shard(0)
            .unwrap()
            .current()
            .engine()
            .save_bytes()
            .unwrap();
        assert!(ShardRouter::from_snapshot_bytes(&[bare], None).is_err());
    }

    #[test]
    fn mismatched_map_and_fleet_size_is_rejected() {
        let stream = quick_stream(1);
        let engines = shard_engines(&stream, 1);
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        assert!(ShardRouter::new(engines, map).is_err());
        let map = ShardMap::from_pairs(1, &[(0, 0)]).unwrap();
        assert!(ShardRouter::new(Vec::new(), map).is_err());
    }

    #[test]
    fn batched_router_serves_through_shard_schedulers() {
        let stream = quick_stream(2);
        let engines = shard_engines(&stream, 2);
        let references = engines.clone();
        let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
        let router = ShardRouter::with_batching(
            engines,
            map,
            BatchConfig {
                max_wait: Duration::from_millis(5),
                ..BatchConfig::default()
            },
        )
        .unwrap();

        for d in 0..2u64 {
            let x = stream.domain(d as usize).test.x.slice_rows(0, 6);
            let routed = router.predict_ite(d, &x).unwrap();
            assert_eq!(routed, references[d as usize].predict_ite(&x).unwrap());
        }
        // The shard schedulers saw the traffic and measured queue wait.
        for s in 0..2 {
            let stats = router.shard_stats(s).unwrap().expect("batched");
            assert_eq!(stats.requests, 1);
            assert_eq!(stats.queue_wait.count, 1);
        }
        assert_eq!(router.stats().requests, 2);
    }
}
