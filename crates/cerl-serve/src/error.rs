//! Typed errors of the serving front-end.
//!
//! [`ServeError`] covers the failures the *front-end* introduces — routing
//! to an unknown domain or shard, a full submission queue, a stopped
//! scheduler — and wraps the engine layer's
//! [`CerlError`](cerl_core::error::CerlError) for everything underneath,
//! so one error type flows back to a request handler regardless of where
//! in the stack a request died.

use cerl_core::error::CerlError;
use std::fmt;

/// Error returned by the batching scheduler and shard router.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request named a domain the shard map does not route.
    UnknownDomain {
        /// Domain id carried by the request.
        domain: u64,
    },
    /// A shard index outside the fleet was addressed directly.
    UnknownShard {
        /// The offending shard index.
        shard: usize,
        /// Number of shards in the fleet.
        shards: usize,
    },
    /// The bounded submission queue is at capacity; the request was
    /// rejected instead of queued (shed load rather than grow latency
    /// without bound).
    QueueFull {
        /// Configured queue capacity (pending requests).
        capacity: usize,
    },
    /// The scheduler's collector thread has shut down; no more requests
    /// will be served by this scheduler instance.
    SchedulerShutdown,
    /// The engine rejected the request (wrong dimension, untrained model,
    /// bad snapshot, ...).
    Engine(CerlError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownDomain { domain } => {
                write!(f, "no shard is mapped for domain {domain}")
            }
            ServeError::UnknownShard { shard, shards } => {
                write!(
                    f,
                    "shard {shard} does not exist (fleet has {shards} shard(s))"
                )
            }
            ServeError::QueueFull { capacity } => {
                write!(
                    f,
                    "submission queue is full ({capacity} pending requests); retry with backoff"
                )
            }
            ServeError::SchedulerShutdown => {
                write!(f, "batch scheduler has shut down")
            }
            ServeError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CerlError> for ServeError {
    fn from(e: CerlError) -> Self {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ServeError::UnknownDomain { domain: 7 }
            .to_string()
            .contains('7'));
        assert!(ServeError::UnknownShard {
            shard: 9,
            shards: 3
        }
        .to_string()
        .contains('9'));
        assert!(ServeError::QueueFull { capacity: 128 }
            .to_string()
            .contains("128"));
        assert!(ServeError::SchedulerShutdown
            .to_string()
            .contains("shut down"));
        let e: ServeError = CerlError::NotTrained.into();
        assert!(e.to_string().contains("not observed"));
        assert_eq!(e, ServeError::Engine(CerlError::NotTrained));
    }
}
