//! Typed errors of the serving front-end.
//!
//! [`ServeError`] covers the failures the *front-end* introduces — routing
//! to an unknown domain or shard, a full submission queue, a stopped
//! scheduler — and wraps the engine layer's
//! [`CerlError`] for everything underneath,
//! so one error type flows back to a request handler regardless of where
//! in the stack a request died.

use cerl_core::error::CerlError;
use std::fmt;

/// Error returned by the batching scheduler and shard router.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request named a domain the shard map does not route.
    UnknownDomain {
        /// Domain id carried by the request.
        domain: u64,
    },
    /// A shard index outside the fleet was addressed directly.
    UnknownShard {
        /// The offending shard index.
        shard: usize,
        /// Number of shards in the fleet.
        shards: usize,
    },
    /// The bounded submission queue is at capacity; the request was
    /// rejected instead of queued (shed load rather than grow latency
    /// without bound).
    QueueFull {
        /// Configured queue capacity (pending requests).
        capacity: usize,
    },
    /// The scheduler's collector thread has shut down; no more requests
    /// will be served by this scheduler instance.
    SchedulerShutdown,
    /// A scatter-gather request's per-row domain tags do not line up with
    /// its matrix rows.
    DomainTagMismatch {
        /// Rows in the request matrix.
        rows: usize,
        /// Domain tags provided.
        tags: usize,
    },
    /// A fleet restore found a shard map whose declared shard count does
    /// not match the number of replica snapshots provided.
    FleetSizeMismatch {
        /// Shards the embedded topology declares.
        expected: usize,
        /// Replica snapshots actually provided.
        found: usize,
    },
    /// `begin_rebalance` was called while another domain's move is still
    /// in its dual-route window; commit or abort that one first.
    RebalanceInProgress {
        /// Domain of the in-flight rebalance.
        domain: u64,
    },
    /// `commit_rebalance`/`abort_rebalance` was called with no rebalance
    /// begun.
    NoRebalancePending,
    /// A `RebalanceOrchestrator` plan execution was started while another
    /// plan is still running on the same orchestrator.
    PlanInProgress,
    /// An orchestrated rebalance plan was halted: the canary window of the
    /// named move regressed, the in-flight move was aborted, and the
    /// remaining moves were not executed. The fleet is left on the valid
    /// intermediate topology produced by the committed prefix.
    PlanHalted {
        /// Domain whose move was aborted.
        domain: u64,
        /// Moves committed before the halt (the applied prefix).
        committed: usize,
        /// Moves not applied (the aborted one and everything after it).
        remaining: usize,
        /// Human-readable description of the canary regression.
        reason: String,
    },
    /// `begin_add_replica` named a shard that already serves the domain —
    /// a replica-set member cannot be added twice.
    ReplicaAlreadyServing {
        /// Domain whose replica-set already holds the shard.
        domain: u64,
        /// The shard that already serves the domain.
        shard: usize,
    },
    /// `drain_replica` would empty the domain's replica-set; a mapped
    /// domain must always keep at least one serving replica.
    LastReplica {
        /// Domain that would lose its last replica.
        domain: u64,
        /// The sole remaining replica.
        shard: usize,
    },
    /// `restore_replica`/`remove_replica` named a replica that is not in
    /// the draining state (drain it first, or it was already removed).
    ReplicaNotDraining {
        /// Domain the call named.
        domain: u64,
        /// Shard the call named.
        shard: usize,
    },
    /// An orchestrated replica change (`add_replica`/`drain_replica`/
    /// `remove_replica`) was auto-aborted: its canary window regressed
    /// and the change was rolled back (an add was dropped unpublished; a
    /// drain was restored; a remove left the replica draining). The
    /// fleet serves exactly the topology it served before the call.
    ReplicaChangeAborted {
        /// Domain whose replica change was rolled back.
        domain: u64,
        /// The replica shard involved.
        shard: usize,
        /// Which verb was aborted: `"add"`, `"drain"`, or `"remove"`.
        verb: &'static str,
        /// Human-readable description of the canary regression.
        reason: String,
    },
    /// The engine rejected the request (wrong dimension, untrained model,
    /// bad snapshot, ...).
    Engine(CerlError),
}

impl ServeError {
    /// Whether this failure is the **client's fault** — the request
    /// itself was unservable — rather than a failure of the serving
    /// fleet.
    ///
    /// Client faults: an unroutable domain tag, mismatched tag/row
    /// counts, and requests the engine can never serve regardless of
    /// health (wrong covariate width, empty input). Everything else —
    /// queue overflow, scheduler shutdown, rebalance bookkeeping, any
    /// other engine failure — is a serve fault.
    ///
    /// The split exists so a misbehaving network client flooding typed
    /// rejections cannot masquerade as fleet regression:
    /// [`CanaryConfig::verdict`](crate::orchestrator::CanaryConfig::verdict)
    /// judges serve faults only. (The network layer's own client faults —
    /// malformed frames, expired deadlines — are classified by
    /// `cerl-net` before a `ServeError` ever exists.)
    pub fn is_client_fault(&self) -> bool {
        // Exhaustive on purpose (no wildcard arm): adding a `ServeError`
        // variant must force a classification decision here — both the
        // compiler and `cerl-analyze`'s taxonomy rule check it.
        match self {
            ServeError::UnknownDomain { .. } | ServeError::DomainTagMismatch { .. } => true,
            ServeError::Engine(CerlError::DimensionMismatch { .. })
            | ServeError::Engine(CerlError::EmptyInput { .. }) => true,
            ServeError::UnknownShard { .. }
            | ServeError::QueueFull { .. }
            | ServeError::SchedulerShutdown
            | ServeError::FleetSizeMismatch { .. }
            | ServeError::RebalanceInProgress { .. }
            | ServeError::NoRebalancePending
            | ServeError::PlanInProgress
            | ServeError::PlanHalted { .. }
            | ServeError::ReplicaAlreadyServing { .. }
            | ServeError::LastReplica { .. }
            | ServeError::ReplicaNotDraining { .. }
            | ServeError::ReplicaChangeAborted { .. }
            | ServeError::Engine(_) => false,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownDomain { domain } => {
                write!(f, "no shard is mapped for domain {domain}")
            }
            ServeError::UnknownShard { shard, shards } => {
                write!(
                    f,
                    "shard {shard} does not exist (fleet has {shards} shard(s))"
                )
            }
            ServeError::QueueFull { capacity } => {
                write!(
                    f,
                    "submission queue is full ({capacity} pending requests); retry with backoff"
                )
            }
            ServeError::SchedulerShutdown => {
                write!(f, "batch scheduler has shut down")
            }
            ServeError::DomainTagMismatch { rows, tags } => {
                write!(
                    f,
                    "scatter request has {rows} row(s) but {tags} domain tag(s); every row needs exactly one tag"
                )
            }
            ServeError::FleetSizeMismatch { expected, found } => {
                write!(
                    f,
                    "replica shard map declares {expected} shard(s) but {found} replica snapshot(s) were provided"
                )
            }
            ServeError::RebalanceInProgress { domain } => {
                write!(
                    f,
                    "a rebalance of domain {domain} is already in progress; commit or abort it first"
                )
            }
            ServeError::NoRebalancePending => {
                write!(f, "no rebalance has been begun on this router")
            }
            ServeError::PlanInProgress => {
                write!(
                    f,
                    "another rebalance plan is already executing on this orchestrator"
                )
            }
            ServeError::PlanHalted {
                domain,
                committed,
                remaining,
                reason,
            } => {
                write!(
                    f,
                    "rebalance plan halted at domain {domain}'s move ({committed} move(s) \
                     committed, {remaining} not applied): {reason}"
                )
            }
            ServeError::ReplicaAlreadyServing { domain, shard } => {
                write!(
                    f,
                    "shard {shard} already serves domain {domain}; a replica cannot be added twice"
                )
            }
            ServeError::LastReplica { domain, shard } => {
                write!(
                    f,
                    "shard {shard} is domain {domain}'s last replica; draining it would leave the \
                     domain unserved"
                )
            }
            ServeError::ReplicaNotDraining { domain, shard } => {
                write!(
                    f,
                    "domain {domain} has no draining replica on shard {shard}; drain it first"
                )
            }
            ServeError::ReplicaChangeAborted {
                domain,
                shard,
                verb,
                reason,
            } => {
                write!(
                    f,
                    "replica {verb} of domain {domain} on shard {shard} auto-aborted and rolled \
                     back: {reason}"
                )
            }
            ServeError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CerlError> for ServeError {
    fn from(e: CerlError) -> Self {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ServeError::UnknownDomain { domain: 7 }
            .to_string()
            .contains('7'));
        assert!(ServeError::UnknownShard {
            shard: 9,
            shards: 3
        }
        .to_string()
        .contains('9'));
        assert!(ServeError::QueueFull { capacity: 128 }
            .to_string()
            .contains("128"));
        assert!(ServeError::SchedulerShutdown
            .to_string()
            .contains("shut down"));
        let tag = ServeError::DomainTagMismatch { rows: 4, tags: 3 }.to_string();
        assert!(tag.contains('4') && tag.contains('3'));
        let fleet = ServeError::FleetSizeMismatch {
            expected: 3,
            found: 2,
        }
        .to_string();
        assert!(
            fleet.contains("3 shard(s)") && fleet.contains("2 replica snapshot(s)"),
            "{fleet}"
        );
        assert!(ServeError::RebalanceInProgress { domain: 12 }
            .to_string()
            .contains("12"));
        assert!(ServeError::NoRebalancePending
            .to_string()
            .contains("no rebalance"));
        assert!(ServeError::PlanInProgress
            .to_string()
            .contains("already executing"));
        let halted = ServeError::PlanHalted {
            domain: 4,
            committed: 2,
            remaining: 3,
            reason: "error rate 0.40 above 0.10".into(),
        }
        .to_string();
        assert!(
            halted.contains("domain 4")
                && halted.contains("2 move(s)")
                && halted.contains("3 not applied")
                && halted.contains("error rate"),
            "{halted}"
        );
        let already = ServeError::ReplicaAlreadyServing {
            domain: 6,
            shard: 2,
        }
        .to_string();
        assert!(
            already.contains("domain 6") && already.contains("shard 2"),
            "{already}"
        );
        let last = ServeError::LastReplica {
            domain: 6,
            shard: 2,
        }
        .to_string();
        assert!(last.contains("last replica"), "{last}");
        let draining = ServeError::ReplicaNotDraining {
            domain: 6,
            shard: 2,
        }
        .to_string();
        assert!(draining.contains("no draining replica"), "{draining}");
        let aborted = ServeError::ReplicaChangeAborted {
            domain: 6,
            shard: 2,
            verb: "drain",
            reason: "fleet error rate 0.40 above 0.10".into(),
        }
        .to_string();
        assert!(
            aborted.contains("replica drain")
                && aborted.contains("domain 6")
                && aborted.contains("error rate"),
            "{aborted}"
        );
        let e: ServeError = CerlError::NotTrained.into();
        assert!(e.to_string().contains("not observed"));
        assert_eq!(e, ServeError::Engine(CerlError::NotTrained));
    }

    #[test]
    fn fault_classification_separates_client_from_serve() {
        // Client faults: the request was unservable by construction.
        assert!(ServeError::UnknownDomain { domain: 7 }.is_client_fault());
        assert!(ServeError::DomainTagMismatch { rows: 4, tags: 3 }.is_client_fault());
        assert!(ServeError::Engine(CerlError::DimensionMismatch {
            expected: 10,
            found: 3
        })
        .is_client_fault());
        assert!(ServeError::Engine(CerlError::EmptyInput {
            what: "request matrix has no rows"
        })
        .is_client_fault());
        // Serve faults: the fleet failed a well-formed request.
        assert!(!ServeError::QueueFull { capacity: 8 }.is_client_fault());
        assert!(!ServeError::SchedulerShutdown.is_client_fault());
        assert!(!ServeError::Engine(CerlError::NotTrained).is_client_fault());
        assert!(!ServeError::UnknownShard {
            shard: 9,
            shards: 3
        }
        .is_client_fault());
        assert!(!ServeError::NoRebalancePending.is_client_fault());
        // Replica-lifecycle bookkeeping is operator-facing, never the
        // serving client's fault.
        assert!(!ServeError::ReplicaAlreadyServing {
            domain: 6,
            shard: 2
        }
        .is_client_fault());
        assert!(!ServeError::LastReplica {
            domain: 6,
            shard: 2
        }
        .is_client_fault());
        assert!(!ServeError::ReplicaNotDraining {
            domain: 6,
            shard: 2
        }
        .is_client_fault());
        assert!(!ServeError::ReplicaChangeAborted {
            domain: 6,
            shard: 2,
            verb: "add",
            reason: "regressed".into()
        }
        .is_client_fault());
    }
}
