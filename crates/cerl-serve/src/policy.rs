//! Pluggable replica routing: which of a domain's replicas serves this
//! sub-batch.
//!
//! With replica-sets in the [`ShardMap`](cerl_core::snapshot::ShardMap)
//! (PR 10's topology generalization), a hot domain can be served by
//! several identical shards at once. Something has to pick one per
//! sub-batch — that is a [`RoutePolicy`].
//!
//! # The policy contract
//!
//! **A policy may never change results, only placement.** Every replica
//! in a domain's set serves the same model (replicas are published from
//! the same snapshot bytes / engine clones), and per-row inference is
//! batch- and shard-independent, so *any* choice returns bitwise the
//! rows an unreplicated reference engine would. The policy only decides
//! *where* the work lands — load spreading is a pure placement concern.
//! Two hard rules follow:
//!
//! * the returned shard must be a member of the replica-set the router
//!   passed in (the router defensively falls back to the set's primary
//!   on a stray answer, so a buggy policy degrades to primary routing
//!   rather than misrouting);
//! * `choose` runs on the serving path for every replicated sub-batch:
//!   it must be wait-free — no locks, no blocking, no allocation.
//!
//! Single-replica domains never consult a policy at all; the router
//! routes them to their one shard exactly as before replication existed
//! (bitwise **and** cost identical).
//!
//! # Shipped policies
//!
//! | policy | choice | use |
//! |--------|--------|-----|
//! | [`LeastLoaded`] | replica with the fewest cumulative rows served (ties: smallest shard id) | default; steers new work away from the busiest replica |
//! | [`RoundRobin`] | replicas in rotation (one shared atomic cursor) | uniform spreading regardless of request size skew |
//! | [`VersionPinned`] | first replica publishing the pinned engine version (fallback: primary) | canary reads — keep traffic on a known-good version while one replica trials a successor |

use crate::orchestrator::ShardLoad;
use cerl_core::snapshot::ReplicaSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fleet state a [`RoutePolicy`] may consult, assembled by the router
/// once per request (not per row).
#[derive(Debug, Clone, Copy)]
pub struct RouteContext<'a> {
    /// Cumulative per-shard load counters, indexed by shard id
    /// ([`ShardRouter::shard_loads`](crate::router::ShardRouter::shard_loads)).
    pub loads: &'a [ShardLoad],
    /// Currently published engine version of every shard, indexed by
    /// shard id.
    pub versions: &'a [u64],
}

impl RouteContext<'_> {
    /// Cumulative rows served by `shard` (0 when unknown — a policy must
    /// tolerate a context narrower than the fleet).
    pub fn rows(&self, shard: usize) -> u64 {
        self.loads
            .iter()
            .find(|l| l.shard == shard)
            .map_or(0, |l| l.rows)
    }

    /// Published engine version of `shard` (0 when unknown).
    pub fn version(&self, shard: usize) -> u64 {
        self.versions.get(shard).copied().unwrap_or(0)
    }
}

/// Chooses the serving replica for one sub-batch of a replicated domain
/// (see the [module docs](self) for the contract: placement only, never
/// results; member of the set; wait-free).
pub trait RoutePolicy: Send + Sync + std::fmt::Debug {
    /// Pick the shard (a member of `replicas`) that serves this
    /// sub-batch: `rows` rows of `domain`, under fleet state `ctx`.
    fn choose(
        &self,
        domain: u64,
        rows: usize,
        replicas: &ReplicaSet,
        ctx: &RouteContext<'_>,
    ) -> usize;

    /// Stable policy name for diagnostics and metrics labels.
    fn name(&self) -> &'static str;
}

/// Route each sub-batch to the replica that has served the fewest rows
/// so far (ties break toward the smaller shard id, so the choice is a
/// deterministic function of the load snapshot). The router's default.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl RoutePolicy for LeastLoaded {
    fn choose(
        &self,
        _domain: u64,
        _rows: usize,
        replicas: &ReplicaSet,
        ctx: &RouteContext<'_>,
    ) -> usize {
        let mut best = replicas.primary();
        let mut best_rows = ctx.rows(best);
        for &shard in replicas.shards() {
            let rows = ctx.rows(shard);
            if rows < best_rows {
                best = shard;
                best_rows = rows;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "least_loaded"
    }
}

/// Rotate through the replica-set with one shared cursor: the `n`-th
/// replicated sub-batch (fleet-wide) lands on `replicas[n % len]`.
/// Insensitive to request-size skew by construction.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: AtomicU64,
}

impl RoundRobin {
    /// A fresh rotation starting at each set's first replica.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RoutePolicy for RoundRobin {
    fn choose(
        &self,
        _domain: u64,
        _rows: usize,
        replicas: &ReplicaSet,
        _ctx: &RouteContext<'_>,
    ) -> usize {
        // ordering: Relaxed — the cursor is a pure tie-breaker with no
        // data behind it; recorders only need distinct values, not a
        // happens-before edge.
        let n = self.cursor.fetch_add(1, Ordering::Relaxed);
        let i = (n % replicas.len() as u64) as usize;
        // panic-ok: i < replicas.len() by the modulo above, and a
        // ReplicaSet is never empty (constructor invariant).
        replicas.shards()[i]
    }

    fn name(&self) -> &'static str {
        "round_robin"
    }
}

/// Pin traffic to replicas publishing a specific engine version — the
/// read-side canary tool: while one replica of the set trials a new
/// version, pinned clients keep reading the incumbent. Falls back to
/// the set's primary when no replica publishes the pinned version (a
/// wrong pin must degrade to primary routing, not fail requests).
#[derive(Debug, Clone, Copy)]
pub struct VersionPinned {
    /// The engine version to keep reading from.
    pub version: u64,
}

impl VersionPinned {
    /// Pin to `version`.
    pub fn new(version: u64) -> Self {
        Self { version }
    }
}

impl RoutePolicy for VersionPinned {
    fn choose(
        &self,
        _domain: u64,
        _rows: usize,
        replicas: &ReplicaSet,
        ctx: &RouteContext<'_>,
    ) -> usize {
        replicas
            .shards()
            .iter()
            .copied()
            .find(|&shard| ctx.version(shard) == self.version)
            .unwrap_or_else(|| replicas.primary())
    }

    fn name(&self) -> &'static str {
        "version_pinned"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(loads: &[(usize, u64)], versions: &[u64]) -> (Vec<ShardLoad>, Vec<u64>) {
        (
            loads
                .iter()
                .map(|&(shard, rows)| ShardLoad {
                    shard,
                    requests: rows / 4,
                    rows,
                })
                .collect(),
            versions.to_vec(),
        )
    }

    #[test]
    fn least_loaded_prefers_coolest_then_smallest_id() {
        let replicas = ReplicaSet::new(&[0, 1, 2]).unwrap();
        let (loads, versions) = ctx_with(&[(0, 500), (1, 100), (2, 100)], &[1, 1, 1]);
        let ctx = RouteContext {
            loads: &loads,
            versions: &versions,
        };
        // Shards 1 and 2 tie at 100 rows; the smaller id wins, and the
        // same snapshot always yields the same choice.
        assert_eq!(LeastLoaded.choose(7, 8, &replicas, &ctx), 1);
        assert_eq!(LeastLoaded.choose(7, 8, &replicas, &ctx), 1);
        // Missing loads read as zero (coolest possible).
        let ctx = RouteContext {
            loads: &loads[..1],
            versions: &versions,
        };
        assert_eq!(LeastLoaded.choose(7, 8, &replicas, &ctx), 1);
    }

    #[test]
    fn round_robin_rotates_through_the_set() {
        let replicas = ReplicaSet::new(&[2, 5]).unwrap();
        let (loads, versions) = ctx_with(&[], &[1, 1, 1, 1, 1, 1]);
        let ctx = RouteContext {
            loads: &loads,
            versions: &versions,
        };
        let policy = RoundRobin::new();
        let picks: Vec<usize> = (0..4)
            .map(|_| policy.choose(7, 1, &replicas, &ctx))
            .collect();
        assert_eq!(picks, vec![2, 5, 2, 5]);
    }

    #[test]
    fn version_pinned_finds_the_version_or_falls_back_to_primary() {
        let replicas = ReplicaSet::new(&[0, 2]).unwrap();
        let (loads, versions) = ctx_with(&[], &[1, 9, 3]);
        let ctx = RouteContext {
            loads: &loads,
            versions: &versions,
        };
        assert_eq!(VersionPinned::new(3).choose(7, 1, &replicas, &ctx), 2);
        assert_eq!(VersionPinned::new(1).choose(7, 1, &replicas, &ctx), 0);
        // No replica publishes version 8: degrade to the primary.
        assert_eq!(VersionPinned::new(8).choose(7, 1, &replicas, &ctx), 0);
        // Shard 1 publishes 9 but is not in the set — never chosen.
        assert_eq!(VersionPinned::new(9).choose(7, 1, &replicas, &ctx), 0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(LeastLoaded.name(), "least_loaded");
        assert_eq!(RoundRobin::new().name(), "round_robin");
        assert_eq!(VersionPinned::new(1).name(), "version_pinned");
    }
}
