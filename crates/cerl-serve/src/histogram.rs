//! Fixed log-spaced latency histogram with wait-free recording.
//!
//! [`LatencyHistogram`] is a block of [`BUCKET_COUNT`] atomic counters
//! over geometrically growing duration buckets: bucket 0 covers
//! everything up to 1 µs and each subsequent bucket's upper bound is
//! [`BUCKET_GROWTH`]× the previous one, which spans 1 µs to roughly 15 s
//! before the final overflow bucket. Recording a sample is one
//! `fetch_add` (plus one for the running nanosecond total used by the
//! mean) — no locks, no allocation — so request threads can record on
//! every call without contending.
//!
//! Quantiles are read by walking the cumulative counts and reporting a
//! representative duration for the bucket the target rank falls in (the
//! geometric midpoint of the bucket's bounds). With ~31% bucket growth
//! the reported p50/p95/p99 are within ~15% of the true order statistic —
//! the right fidelity for dashboards and canary comparisons, at a fixed
//! 0.5 KiB per histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets in a [`LatencyHistogram`].
pub const BUCKET_COUNT: usize = 64;

/// Upper bound of bucket 0, in nanoseconds (1 µs).
const FIRST_UPPER_NANOS: f64 = 1_000.0;

/// Geometric growth factor between consecutive bucket upper bounds.
pub const BUCKET_GROWTH: f64 = 1.3;

/// Wait-free, fixed-footprint histogram of request latencies.
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKET_COUNT],
    total_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total_nanos: AtomicU64::new(0),
        }
    }

    /// Record one sample (wait-free; two relaxed `fetch_add`s).
    pub fn record(&self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        // ordering: wait-free recorder — readers tolerate racing
        // increments (monotone-read contract), so Relaxed atomicity is
        // all that is needed. panic-ok: bucket_index returns
        // < BUCKET_COUNT by construction (property-tested).
        self.counts[Self::bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed); // ordering: lone stat counter, no edges
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        // ordering: advisory monotone read; no cross-bucket coherence is
        // promised, so Relaxed needs no edges.
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The bucket a sample of `nanos` nanoseconds falls in — public so
    /// tests (and dashboard code aligning external data with these
    /// buckets) can reason about which bucket a known sample landed in.
    pub fn bucket_for(nanos: u64) -> usize {
        Self::bucket_index(nanos)
    }

    /// Inclusive `(lower, upper)` duration bounds of bucket `i`.
    ///
    /// Bucket 0's lower bound is zero; the final overflow bucket's upper
    /// bound is [`Duration::MAX`]. Every quantile the histogram reports
    /// for a rank landing in bucket `i` lies within these bounds (the
    /// geometric-midpoint contract, property-tested in
    /// `tests/property_based.rs`).
    pub fn bucket_bounds(i: usize) -> (Duration, Duration) {
        // panic-ok: documented API precondition of this diagnostic
        // accessor; serving-path callers pass loop indices < BUCKET_COUNT.
        assert!(i < BUCKET_COUNT, "bucket {i} out of range");
        let lower = if i == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(Self::bucket_upper_nanos(i - 1) as u64)
        };
        let upper = if i == BUCKET_COUNT - 1 {
            Duration::MAX
        } else {
            Duration::from_nanos(Self::bucket_upper_nanos(i) as u64)
        };
        (lower, upper)
    }

    /// The bucket a sample of `nanos` nanoseconds falls in.
    fn bucket_index(nanos: u64) -> usize {
        if nanos as f64 <= FIRST_UPPER_NANOS {
            return 0;
        }
        // Smallest i with FIRST_UPPER * GROWTH^i >= nanos.
        let i = ((nanos as f64) / FIRST_UPPER_NANOS).ln() / BUCKET_GROWTH.ln();
        (i.ceil() as usize).min(BUCKET_COUNT - 1)
    }

    /// Upper bound of bucket `i` in nanoseconds (the last bucket is
    /// unbounded and reports its lower bound instead).
    fn bucket_upper_nanos(i: usize) -> f64 {
        FIRST_UPPER_NANOS * BUCKET_GROWTH.powi(i as i32)
    }

    /// Representative duration reported for a quantile landing in bucket
    /// `i`: the geometric midpoint of the bucket's bounds.
    fn bucket_representative(i: usize) -> Duration {
        let upper = Self::bucket_upper_nanos(i);
        let nanos = if i == 0 {
            upper * 0.5
        } else if i == BUCKET_COUNT - 1 {
            // Overflow bucket: unbounded above, report the lower bound.
            Self::bucket_upper_nanos(i - 1)
        } else {
            (Self::bucket_upper_nanos(i - 1) * upper).sqrt()
        };
        Duration::from_nanos(nanos as u64)
    }

    /// The `q`-quantile (`0 < q <= 1`) of recorded samples, or `None`
    /// while the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        Self::quantile_from_counts(&self.bucket_counts(), q)
    }

    /// Point-in-time copy of every bucket's sample count (index `i`
    /// covers [`LatencyHistogram::bucket_bounds`]`(i)`).
    ///
    /// Bucket counts are cumulative over the histogram's lifetime and only
    /// ever grow, so two snapshots bracket a window: subtracting them
    /// element-wise yields the window's own distribution, and
    /// [`LatencyHistogram::quantile_from_counts`] turns that difference
    /// into *windowed* quantiles — the signal a canary watcher compares
    /// against a baseline window, where the cumulative p95 of
    /// [`LatencyHistogram::snapshot`] would dilute a fresh regression
    /// under the weight of history.
    pub fn bucket_counts(&self) -> [u64; BUCKET_COUNT] {
        // ordering: advisory monotone read, no edges. panic-ok:
        // from_fn hands indices < BUCKET_COUNT only.
        std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }

    /// The `q`-quantile of an explicit bucket-count array (typically the
    /// element-wise difference of two [`LatencyHistogram::bucket_counts`]
    /// snapshots), or `None` when the counts are all zero.
    pub fn quantile_from_counts(counts: &[u64; BUCKET_COUNT], q: f64) -> Option<Duration> {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0;
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Some(Self::bucket_representative(i));
            }
        }
        Some(Self::bucket_representative(BUCKET_COUNT - 1))
    }

    /// Write this histogram into a metrics registry as one
    /// Prometheus-style histogram family: bucket upper bounds in
    /// seconds (the overflow bucket renders as `+Inf`) and the exact
    /// running nanosecond total as `_sum`. Scrape-time only — the
    /// recording path never sees the registry.
    pub fn export_into(
        &self,
        reg: &mut cerl_obs::MetricsRegistry,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) {
        let counts = self.bucket_counts();
        let buckets: Vec<(f64, u64)> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let (_, upper) = Self::bucket_bounds(i);
                let bound = if upper == Duration::MAX {
                    f64::INFINITY
                } else {
                    upper.as_secs_f64()
                };
                (bound, c)
            })
            .collect();
        // ordering: advisory monotone read, no edges.
        let sum = self.total_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        reg.histogram(name, help, labels, &buckets, sum);
    }

    /// Coherent-enough point-in-time summary (count, mean, p50/p95/p99).
    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.count();
        // ordering: advisory monotone read, no edges.
        let mean = self
            .total_nanos
            .load(Ordering::Relaxed)
            .checked_div(count)
            .map_or(Duration::ZERO, Duration::from_nanos);
        LatencySnapshot {
            count,
            mean,
            p50: self.quantile(0.50).unwrap_or(Duration::ZERO),
            p95: self.quantile(0.95).unwrap_or(Duration::ZERO),
            p99: self.quantile(0.99).unwrap_or(Duration::ZERO),
        }
    }
}

/// Point-in-time summary of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean latency.
    pub mean: Duration,
    /// Median latency (bucket-resolution, see module docs).
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, Duration::ZERO);
    }

    #[test]
    fn buckets_are_monotone_and_cover_the_range() {
        let mut prev = 0;
        for nanos in [
            0u64,
            500,
            1_000,
            1_001,
            10_000,
            1_000_000,
            50_000_000,
            1_000_000_000,
            20_000_000_000,
            u64::MAX,
        ] {
            let b = LatencyHistogram::bucket_index(nanos);
            assert!(b >= prev, "bucket index must not decrease ({nanos} ns)");
            assert!(b < BUCKET_COUNT);
            prev = b;
        }
        // A sample sits at or below its bucket's upper bound.
        for nanos in [1_500u64, 123_456, 9_999_999] {
            let b = LatencyHistogram::bucket_index(nanos);
            assert!(nanos as f64 <= LatencyHistogram::bucket_upper_nanos(b) * (1.0 + 1e-12));
            assert!(nanos as f64 > LatencyHistogram::bucket_upper_nanos(b - 1));
        }
    }

    #[test]
    fn every_bucket_edge_lands_in_its_documented_bucket() {
        // `bucket_index` classifies with an ln-ratio while the documented
        // bounds come from `BUCKET_GROWTH.powi` — two float paths that can
        // disagree by one ulp exactly at a bucket edge. Walk every edge:
        // the (truncated) upper bound itself must land in bucket `i`, and
        // the next nanosecond must land in bucket `i + 1`.
        for i in 0..BUCKET_COUNT - 1 {
            let upper = LatencyHistogram::bucket_upper_nanos(i) as u64;
            assert_eq!(
                LatencyHistogram::bucket_for(upper),
                i,
                "upper edge {upper} ns of bucket {i}"
            );
            assert_eq!(
                LatencyHistogram::bucket_for(upper + 1),
                i + 1,
                "one past the upper edge of bucket {i}"
            );
            // The bounds accessor must agree with the classifier: the edge
            // sample sits inside `bucket_bounds(i)`.
            let (lower, bound) = LatencyHistogram::bucket_bounds(i);
            assert!(lower <= Duration::from_nanos(upper));
            assert!(Duration::from_nanos(upper) <= bound, "bucket {i}");
        }
        // The overflow bucket has no finite edge; anything past the last
        // finite bound stays in it.
        let last = LatencyHistogram::bucket_upper_nanos(BUCKET_COUNT - 2) as u64;
        assert_eq!(LatencyHistogram::bucket_for(last * 2), BUCKET_COUNT - 1);
        assert_eq!(LatencyHistogram::bucket_for(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn quantiles_approximate_known_distribution() {
        let h = LatencyHistogram::new();
        // 90 fast samples at 100µs, 10 slow at 10ms.
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Bucket resolution is ~±15%; assert the right order of magnitude.
        assert!(
            p50 >= Duration::from_micros(75) && p50 <= Duration::from_micros(135),
            "{p50:?}"
        );
        assert!(
            p95 >= Duration::from_millis(7) && p95 <= Duration::from_millis(14),
            "{p95:?}"
        );
        assert!(p99 >= p95);
        let mean = h.snapshot().mean;
        // True mean is 1.09ms; the running-total mean is exact.
        assert!(mean >= Duration::from_micros(1085) && mean <= Duration::from_micros(1095));
    }

    #[test]
    fn windowed_quantiles_come_from_bucket_count_differences() {
        let h = LatencyHistogram::new();
        // History: a fast steady state.
        for _ in 0..100 {
            h.record(Duration::from_micros(100));
        }
        let before = h.bucket_counts();
        // Window: a clear regression to 10 ms.
        for _ in 0..20 {
            h.record(Duration::from_millis(10));
        }
        let after = h.bucket_counts();
        let window: [u64; BUCKET_COUNT] = std::array::from_fn(|i| after[i] - before[i]);
        assert_eq!(window.iter().sum::<u64>(), 20);
        let windowed_p50 = LatencyHistogram::quantile_from_counts(&window, 0.50).unwrap();
        assert!(
            windowed_p50 >= Duration::from_millis(7),
            "window must surface the regression: {windowed_p50:?}"
        );
        // The cumulative median still remembers the fast history and sits
        // far below — exactly why canary checks need the windowed view.
        assert!(h.quantile(0.50).unwrap() < windowed_p50);
        // An empty window has no quantiles.
        let empty = [0u64; BUCKET_COUNT];
        assert_eq!(LatencyHistogram::quantile_from_counts(&empty, 0.5), None);
    }

    #[test]
    fn extreme_samples_land_in_edge_buckets() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(3600));
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.01), Some(Duration::from_nanos(500)));
        // Overflow bucket reports its lower bound, far above 15s is capped.
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= Duration::from_secs(10), "{p99:?}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1_000 {
                        h.record(Duration::from_micros(i % 512));
                    }
                });
            }
        });
        assert_eq!(h.count(), 4_000);
    }
}
