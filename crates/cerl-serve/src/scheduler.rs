//! Micro-batching request scheduler: coalesce many small concurrent
//! prediction requests into one forward pass.
//!
//! A serving process taking thousands of small `predict_ite` calls per
//! second wastes most of its time on per-request overhead: every call
//! pays its own standardizer pass, GEMM setup, and activation
//! allocations for a handful of rows. [`BatchScheduler`] amortizes that
//! by queueing concurrent requests and running **one**
//! [`predict_ite_parallel`](cerl_core::serving::ServingEngine::predict_ite_parallel)
//! call over their coalesced rows:
//!
//! * **Bounded submission queue.** [`BatchScheduler::submit`] enqueues a
//!   request or fails fast with [`ServeError::QueueFull`] — load is shed
//!   at the front door instead of growing the queue (and every queued
//!   request's latency) without bound.
//! * **Latency budget.** A dedicated collector thread drains the queue;
//!   a batch closes when its coalesced rows reach
//!   [`BatchConfig::max_batch_rows`] or when
//!   [`BatchConfig::max_wait`] has elapsed since the batch opened —
//!   whichever comes first. An idle scheduler serves a lone request
//!   after at most `max_wait`.
//! * **Per-request demux.** The batch runs against one pinned engine
//!   version; result rows are sliced back out and delivered through each
//!   request's private channel together with the version that served it.
//! * **Bitwise-identical results (per precision mode).** Per-row
//!   inference is batch-independent and the fanned execution uses the
//!   fixed-chunk walk of `ServingEngine`, so a coalesced request's slice
//!   is bitwise identical to the same rows served by an unbatched
//!   [`predict_ite`](cerl_core::serving::ServingEngine::predict_ite)
//!   call against the same engine version (test-enforced in
//!   `tests/serving_batching.rs`). Each published version carries its
//!   own [`PrecisionMode`](cerl_core::precision::PrecisionMode) — `f64`
//!   or compiled-`f32` — and the contract holds *within* a version's
//!   mode: batched == unbatched == scatter, whichever precision the
//!   version was published with (see `cerl_core::precision`).
//! * **Observability.** Queue-wait and end-to-end latency land in
//!   [`LatencyHistogram`]s; [`BatchScheduler::stats`] reports p50/p95/p99
//!   plus batch shape and per-version request counts (see [`ServeStats`]).

use crate::error::ServeError;
use crate::histogram::{LatencyHistogram, LatencySnapshot};
use cerl_core::error::CerlError;
use cerl_core::serving::ServingEngine;
use cerl_math::Matrix;
use cerl_obs::{MetricsRegistry, Stage, TraceSpan};
use std::collections::BTreeMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::task::{Context, Poll, Waker};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`BatchScheduler`].
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Close a batch once its coalesced rows reach this bound (default
    /// 1024 — about two [`PARALLEL_CHUNK_ROWS`] chunks, enough to keep
    /// the fanned forward pass busy without unbounded memory).
    ///
    /// [`PARALLEL_CHUNK_ROWS`]: cerl_core::serving::PARALLEL_CHUNK_ROWS
    pub max_batch_rows: usize,
    /// Close a batch this long after it opened even if under-full
    /// (default 2 ms). This is the extra latency an isolated request pays
    /// for batching; under load batches fill long before the budget.
    pub max_wait: Duration,
    /// Bounded submission queue capacity in pending requests (default
    /// 1024). Submissions beyond it fail with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Worker threads for the coalesced forward pass (default 0 = the
    /// machine's GEMM worker count).
    pub worker_threads: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch_rows: 1024,
            max_wait: Duration::from_millis(2),
            queue_capacity: 1024,
            worker_threads: 0,
        }
    }
}

impl BatchConfig {
    /// Clamp degenerate values (0 rows / 0 capacity would deadlock).
    fn normalized(mut self) -> Self {
        self.max_batch_rows = self.max_batch_rows.max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self
    }
}

/// Shared serve-path counters: scheduler and router both maintain one.
#[derive(Debug, Default)]
pub(crate) struct ServeMetrics {
    requests: AtomicU64,
    rejected: AtomicU64,
    rejected_client: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    batched_rows: AtomicU64,
    max_batch_requests: AtomicU64,
    scatter_requests: AtomicU64,
    scatter_subrequests: AtomicU64,
    queue_wait: LatencyHistogram,
    end_to_end: LatencyHistogram,
    per_version: Mutex<BTreeMap<u64, u64>>,
}

impl ServeMetrics {
    pub(crate) fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait.record(wait);
    }

    pub(crate) fn record_batch(&self, requests: u64, rows: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
        self.batched_requests.fetch_add(requests, Ordering::Relaxed); // ordering: lone stat counter, no edges
        self.batched_rows.fetch_add(rows, Ordering::Relaxed); // ordering: lone stat counter, no edges
                                                              // ordering: lone stat high-water mark, no edges.
        self.max_batch_requests
            .fetch_max(requests, Ordering::Relaxed);
    }

    pub(crate) fn record_response(&self, version: u64, end_to_end: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
        self.end_to_end.record(end_to_end);
        *self
            .per_version
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(version)
            .or_insert(0) += 1;
    }

    /// One rejected request, classified by fault: client faults (the
    /// request itself was unservable — see [`ServeError::is_client_fault`])
    /// are counted separately so canary verdicts can judge serve health
    /// without being halted by a misbehaving client.
    pub(crate) fn record_rejection(&self, error: &ServeError) {
        self.rejected.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
        if error.is_client_fault() {
            self.rejected_client.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
        }
    }

    /// One answered cross-shard scatter-gather request: counted once as a
    /// request, once per participating shard in the per-version table
    /// (`versions` holds each sub-batch's `(shard, version)` pin), so
    /// `per_version_requests` sums can exceed `requests` on fleets
    /// serving mixed-domain traffic.
    pub(crate) fn record_scatter(&self, versions: &[(usize, u64)], end_to_end: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
        self.scatter_requests.fetch_add(1, Ordering::Relaxed); // ordering: lone stat counter, no edges
                                                               // ordering: lone stat counter, no edges.
        self.scatter_subrequests
            .fetch_add(versions.len() as u64, Ordering::Relaxed);
        self.end_to_end.record(end_to_end);
        let mut per_version = self
            .per_version
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for &(_, version) in versions {
            *per_version.entry(version).or_insert(0) += 1;
        }
    }

    /// Cheap counters-only view for canary polling: no quantile walk, no
    /// per-version table clone — just the request/rejection totals and
    /// the raw end-to-end bucket counts, so an orchestrator can poll at
    /// window resolution without perturbing the fleet it is watching.
    pub(crate) fn canary_snapshot(&self) -> crate::orchestrator::CanarySnapshot {
        crate::orchestrator::CanarySnapshot {
            // ordering: advisory snapshot of independent monotone
            // counters — per-counter coherence only, no edges.
            requests: self.requests.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            rejected_client: self.rejected_client.load(Ordering::Relaxed),
            end_to_end_buckets: self.end_to_end.bucket_counts(),
        }
    }

    /// Write every counter and histogram into `reg` under `prefix`
    /// (e.g. `cerl_serve`) — the scrape-time half of the unified
    /// metrics registry; the serving path never touches the registry.
    pub(crate) fn export_metrics(&self, prefix: &str, reg: &mut MetricsRegistry) {
        // ordering: advisory snapshot of independent monotone counters —
        // per-counter coherence only, no edges.
        let pairs: [(&str, &str, u64); 9] = [
            (
                "requests_total",
                "Requests answered successfully.",
                self.requests.load(Ordering::Relaxed),
            ),
            (
                "rejected_total",
                "Requests rejected with a typed ServeError (all faults).",
                self.rejected.load(Ordering::Relaxed),
            ),
            (
                "rejected_client_total",
                "Rejected requests that were client faults.",
                self.rejected_client.load(Ordering::Relaxed),
            ),
            (
                "batches_total",
                "Coalesced forward passes executed.",
                self.batches.load(Ordering::Relaxed),
            ),
            (
                "batched_requests_total",
                "Requests that entered a coalesced forward pass.",
                self.batched_requests.load(Ordering::Relaxed),
            ),
            (
                "batched_rows_total",
                "Rows across all coalesced forward passes.",
                self.batched_rows.load(Ordering::Relaxed),
            ),
            (
                "max_batch_requests",
                "Largest number of requests coalesced into one batch.",
                self.max_batch_requests.load(Ordering::Relaxed),
            ),
            (
                "scatter_requests_total",
                "Cross-shard scatter-gather requests answered.",
                self.scatter_requests.load(Ordering::Relaxed),
            ),
            (
                "scatter_subrequests_total",
                "Per-shard sub-batches scatter requests fanned into.",
                self.scatter_subrequests.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in pairs {
            reg.counter(&format!("{prefix}_{name}"), help, &[], value);
        }
        self.queue_wait.export_into(
            reg,
            &format!("{prefix}_queue_wait_seconds"),
            "Time requests spent queued before their batch executed.",
            &[],
        );
        self.end_to_end.export_into(
            reg,
            &format!("{prefix}_end_to_end_seconds"),
            "Submit-to-response latency as the caller observes it.",
            &[],
        );
        let per_version: Vec<(u64, u64)> = self
            .per_version
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&v, &c)| (v, c))
            .collect();
        for (version, count) in per_version {
            reg.counter(
                &format!("{prefix}_version_requests_total"),
                "Successful requests per serving engine version.",
                &[("version", &version.to_string())],
                count,
            );
        }
    }

    pub(crate) fn snapshot(&self) -> ServeStats {
        ServeStats {
            // ordering: advisory snapshot of independent monotone
            // counters — per-counter coherence only, no edges.
            requests: self.requests.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            rejected_client: self.rejected_client.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            batched_rows: self.batched_rows.load(Ordering::Relaxed),
            max_batch_requests: self.max_batch_requests.load(Ordering::Relaxed),
            scatter_requests: self.scatter_requests.load(Ordering::Relaxed),
            scatter_subrequests: self.scatter_subrequests.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.snapshot(),
            end_to_end: self.end_to_end.snapshot(),
            per_version_requests: self
                .per_version
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(&v, &c)| (v, c))
                .collect(),
        }
    }
}

/// Point-in-time serve-path statistics ([`BatchScheduler::stats`] /
/// `ShardRouter::stats`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered successfully.
    pub requests: u64,
    /// Requests rejected with a [`ServeError`] (all faults).
    pub rejected: u64,
    /// The subset of [`ServeStats::rejected`] that were **client faults**
    /// — the request itself was unservable (unknown domain, wrong
    /// covariate width, empty input; see [`ServeError::is_client_fault`]).
    /// `rejected - rejected_client` (= [`ServeStats::rejected_serve`]) is
    /// the serve-fault count a canary should judge.
    pub rejected_client: u64,
    /// Coalesced forward passes executed.
    pub batches: u64,
    /// Total requests that entered a coalesced forward pass (excludes
    /// submit-time rejections, which never reach a batch).
    pub batched_requests: u64,
    /// Total rows across all coalesced forward passes.
    pub batched_rows: u64,
    /// Largest number of requests coalesced into one batch so far.
    pub max_batch_requests: u64,
    /// Cross-shard scatter-gather requests answered (router only; a
    /// scatter also counts once in [`ServeStats::requests`]).
    pub scatter_requests: u64,
    /// Per-shard sub-batches those scatter requests fanned out into
    /// (`scatter_subrequests / scatter_requests` = mean shards touched).
    pub scatter_subrequests: u64,
    /// Time requests spent queued before their batch started executing.
    pub queue_wait: LatencySnapshot,
    /// Submit-to-response latency as observed by the caller.
    pub end_to_end: LatencySnapshot,
    /// Successful requests per engine version, ascending by version —
    /// watch these counters shift to judge a canary swap. (A router
    /// aggregates across shards whose versions are independent; use its
    /// per-shard stats to attribute versions. A scatter-gather request
    /// counts once per participating shard's version here, so the column
    /// sum can exceed [`ServeStats::requests`].)
    pub per_version_requests: Vec<(u64, u64)>,
}

impl ServeStats {
    /// Rejections that were the serving fleet's fault (queue overflow,
    /// shutdown, engine failure) — the class a canary verdict judges.
    pub fn rejected_serve(&self) -> u64 {
        self.rejected.saturating_sub(self.rejected_client)
    }

    /// Mean requests coalesced per forward pass (1.0 = no batching won).
    pub fn mean_requests_per_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_requests as f64 / self.batches as f64
    }

    /// Mean rows per coalesced forward pass.
    pub fn mean_rows_per_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_rows as f64 / self.batches as f64
    }

    /// Mean shards a scatter-gather request fanned out to (1.0 = traffic
    /// never actually crossed shards; 0.0 = no scatter traffic yet).
    pub fn mean_shards_per_scatter(&self) -> f64 {
        if self.scatter_requests == 0 {
            return 0.0;
        }
        self.scatter_subrequests as f64 / self.scatter_requests as f64
    }
}

type ReplyPayload = Result<(u64, Vec<f64>), ServeError>;

/// One-shot completion slot shared between a queued request and its
/// [`ResponseHandle`]. The handle can consume the outcome two ways:
/// blocking on the condvar ([`ResponseHandle::wait`]) or registering a
/// task [`Waker`] (the [`Future`] impl) — the latter is what lets one
/// reactor thread multiplex thousands of in-flight requests without a
/// thread per connection.
struct ReplySlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

#[derive(Default)]
struct SlotState {
    fulfilled: bool,
    payload: Option<ReplyPayload>,
    waker: Option<Waker>,
}

impl ReplySlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SlotState::default()),
            ready: Condvar::new(),
        })
    }

    /// Deliver the outcome — first fulfillment wins, later calls are
    /// no-ops — and wake whichever side waits: condvar blocker or waker.
    fn fulfill(&self, payload: ReplyPayload) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.fulfilled {
            return;
        }
        state.fulfilled = true;
        state.payload = Some(payload);
        let waker = state.waker.take();
        drop(state);
        self.ready.notify_all();
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    fn wait_payload(&self) -> ReplyPayload {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(payload) = state.payload.take() {
                return payload;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking poll: takes the payload if delivered, otherwise
    /// (re)registers `waker` to fire on fulfillment.
    fn poll_payload(&self, waker: &Waker) -> Option<ReplyPayload> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(payload) = state.payload.take() {
            return Some(payload);
        }
        match &mut state.waker {
            Some(existing) => existing.clone_from(waker),
            None => state.waker = Some(waker.clone()),
        }
        None
    }
}

/// One queued prediction request awaiting its batch.
struct PendingRequest {
    x: Matrix,
    enqueued: Instant,
    slot: Arc<ReplySlot>,
    /// Sampled observability span threaded from the network reactor;
    /// the collector stamps the queue/batch/inference stages through it.
    trace: Option<TraceSpan>,
}

impl Drop for PendingRequest {
    fn drop(&mut self) {
        // Dropped without being served (scheduler shutdown mid-drain, or
        // a panic unwinding a batch): the waiting handle gets the typed
        // shutdown error instead of hanging forever. After a normal
        // fulfillment this is a no-op.
        self.slot.fulfill(Err(ServeError::SchedulerShutdown));
    }
}

/// In-flight response of a [`BatchScheduler::submit`] call.
///
/// Consume it either by blocking ([`ResponseHandle::wait`]) or by
/// `.await`/polling it — the handle is a true [`Future`], resolved by
/// the collector thread through the stored waker, so an event loop can
/// keep thousands of requests in flight without blocking a thread each.
///
/// Dropping the handle abandons the request (the batch still runs; the
/// result is discarded and not counted in [`ServeStats::requests`]).
#[must_use = "submit() only enqueues; wait() or poll to receive the prediction"]
pub struct ResponseHandle {
    slot: Arc<ReplySlot>,
    submitted: Instant,
    metrics: Arc<ServeMetrics>,
    done: bool,
    trace: Option<TraceSpan>,
}

impl ResponseHandle {
    /// Block until the batch containing this request has executed;
    /// returns the serving engine version and the request's own ITE rows.
    pub fn wait(mut self) -> Result<(u64, Vec<f64>), ServeError> {
        let outcome = self.slot.wait_payload();
        self.settle(outcome)
    }

    /// Record the outcome in the serve-path metrics exactly once and
    /// hand it to the caller (shared tail of `wait` and `poll`).
    fn settle(&mut self, outcome: ReplyPayload) -> Result<(u64, Vec<f64>), ServeError> {
        self.done = true;
        if let Some(trace) = &self.trace {
            trace.stamp(Stage::Gathered);
        }
        match outcome {
            Ok((version, ite)) => {
                self.metrics
                    .record_response(version, self.submitted.elapsed());
                Ok((version, ite))
            }
            Err(e) => {
                self.metrics.record_rejection(&e);
                Err(e)
            }
        }
    }
}

impl Future for ResponseHandle {
    type Output = Result<(u64, Vec<f64>), ServeError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        // panic-ok: polling a completed Future violates the Future
        // contract; the panic is in the misbehaving caller's task, not
        // the serving fleet's.
        assert!(!this.done, "ResponseHandle polled after completion");
        match this.slot.poll_payload(cx.waker()) {
            Some(outcome) => Poll::Ready(this.settle(outcome)),
            None => Poll::Pending,
        }
    }
}

/// Micro-batching front-end over one [`ServingEngine`] (see the
/// [module docs](self)).
///
/// Shared by reference across request threads; dropping the scheduler
/// stops the collector after it drains the in-flight batch.
pub struct BatchScheduler {
    engine: Arc<ServingEngine>,
    queue: SyncSender<PendingRequest>,
    collector: Option<JoinHandle<()>>,
    metrics: Arc<ServeMetrics>,
    cfg: BatchConfig,
}

impl std::fmt::Debug for BatchScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScheduler")
            .field("cfg", &self.cfg)
            .field("engine_version", &self.engine.version())
            .finish_non_exhaustive()
    }
}

impl BatchScheduler {
    /// Spawn the collector thread over `engine` with the given knobs.
    pub fn new(engine: Arc<ServingEngine>, cfg: BatchConfig) -> Self {
        let cfg = cfg.normalized();
        let (queue, rx) = mpsc::sync_channel(cfg.queue_capacity);
        let metrics = Arc::new(ServeMetrics::default());
        let collector = std::thread::Builder::new()
            .name("cerl-serve-collector".into())
            .spawn({
                let engine = Arc::clone(&engine);
                let metrics = Arc::clone(&metrics);
                let cfg = cfg.clone();
                move || collector_loop(&engine, &rx, &cfg, &metrics)
            })
            // panic-ok: construction-time only — failing to spawn the
            // collector thread means the scheduler cannot exist; no
            // in-flight request is lost.
            .expect("spawn batch-collector thread");
        Self {
            engine,
            queue,
            collector: Some(collector),
            metrics,
            cfg,
        }
    }

    /// Convenience constructor with [`BatchConfig::default`] knobs.
    pub fn with_defaults(engine: Arc<ServingEngine>) -> Self {
        Self::new(engine, BatchConfig::default())
    }

    /// Enqueue one request without blocking for its result.
    ///
    /// Fails fast with [`ServeError::QueueFull`] when the bounded queue
    /// is at capacity, and pre-screens the covariate width against the
    /// current engine so an obviously malformed request never poisons a
    /// batch slot. (The screen is best-effort — the authoritative check
    /// happens inside the forward pass against the batch's pinned
    /// version.)
    pub fn submit(&self, x: Matrix) -> Result<ResponseHandle, ServeError> {
        self.submit_traced(x, None)
    }

    /// [`BatchScheduler::submit`] with a sampled observability span
    /// threaded through the batch pipeline: the collector stamps the
    /// queue-wait, batching, and inference stages on `trace`, and the
    /// returned handle stamps the gather stage when it settles. `None`
    /// is exactly `submit` (the unsampled hot path pays nothing).
    pub fn submit_traced(
        &self,
        x: Matrix,
        trace: Option<TraceSpan>,
    ) -> Result<ResponseHandle, ServeError> {
        let submitted = Instant::now();
        if x.rows() == 0 {
            let e = ServeError::Engine(CerlError::EmptyInput {
                what: "request matrix has no rows",
            });
            self.metrics.record_rejection(&e);
            return Err(e);
        }
        if let Some(expected) = self.engine.current().engine().covariate_dim() {
            if x.cols() != expected {
                let e = ServeError::Engine(CerlError::DimensionMismatch {
                    expected,
                    found: x.cols(),
                });
                self.metrics.record_rejection(&e);
                return Err(e);
            }
        }
        let slot = ReplySlot::new();
        let pending = PendingRequest {
            x,
            enqueued: submitted,
            slot: Arc::clone(&slot),
            trace: trace.clone(),
        };
        if let Err(e) = self.queue.try_send(pending) {
            let err = match e {
                TrySendError::Full(_) => ServeError::QueueFull {
                    capacity: self.cfg.queue_capacity,
                },
                TrySendError::Disconnected(_) => ServeError::SchedulerShutdown,
            };
            self.metrics.record_rejection(&err);
            return Err(err);
        }
        Ok(ResponseHandle {
            slot,
            submitted,
            metrics: Arc::clone(&self.metrics),
            done: false,
            trace,
        })
    }

    /// Predicted ITEs for one request, served through the batch path
    /// (blocks for at most queue wait + `max_wait` + one forward pass).
    pub fn predict_ite(&self, x: &Matrix) -> Result<Vec<f64>, ServeError> {
        Ok(self.predict_ite_versioned(x)?.1)
    }

    /// Like [`BatchScheduler::predict_ite`], also reporting the engine
    /// version whose batch served this request.
    pub fn predict_ite_versioned(&self, x: &Matrix) -> Result<(u64, Vec<f64>), ServeError> {
        self.submit(x.clone())?.wait()
    }

    /// The engine this scheduler batches onto (hot-swappable underneath —
    /// in-flight batches keep their pinned version).
    pub fn engine(&self) -> &Arc<ServingEngine> {
        &self.engine
    }

    /// Precision of the engine version currently being batched onto.
    /// Advisory: a swap can land between this call and a subsequent
    /// submit; in-flight batches always report the version (and hence
    /// mode) that actually served them via
    /// [`BatchScheduler::predict_ite_versioned`].
    pub fn precision(&self) -> cerl_core::precision::PrecisionMode {
        self.engine.precision()
    }

    /// The knobs this scheduler runs with (normalized).
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// Serve-path statistics accumulated since construction.
    pub fn stats(&self) -> ServeStats {
        self.metrics.snapshot()
    }

    /// Write this scheduler's counters and latency histograms into a
    /// [`MetricsRegistry`] under the `cerl_serve` prefix, plus the
    /// engine's live-version gauge — the scrape-time path behind the
    /// admin `Metrics` frame.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        self.metrics.export_metrics("cerl_serve", reg);
        reg.gauge(
            "cerl_core_live_versions",
            "Engine versions alive: published plus pinned superseded.",
            &[],
            self.engine.live_version_count() as f64,
        );
    }
}

impl Drop for BatchScheduler {
    fn drop(&mut self) {
        // Disconnect the queue so the collector drains what is in flight
        // and exits, then join it: no request that got an Ok from
        // `submit` before the drop is abandoned mid-batch.
        let (disconnected, _) = mpsc::sync_channel(1);
        drop(std::mem::replace(&mut self.queue, disconnected));
        if let Some(collector) = self.collector.take() {
            let _ = collector.join();
        }
    }
}

/// Collector thread body: open a batch on the first queued request,
/// top it up until `max_batch_rows` or the `max_wait` budget, execute,
/// demux, repeat. Exits when every [`BatchScheduler`] queue handle is
/// gone.
fn collector_loop(
    engine: &ServingEngine,
    rx: &Receiver<PendingRequest>,
    cfg: &BatchConfig,
    metrics: &ServeMetrics,
) {
    loop {
        // Block for the batch-opening request.
        let first = match rx.recv() {
            Ok(first) => first,
            Err(_) => return,
        };
        let deadline = Instant::now() + cfg.max_wait;
        let mut batch = vec![first];
        let mut rows = batch[0].x.rows(); // panic-ok: batch was just built with one element
        while rows < cfg.max_batch_rows {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(next) => {
                    rows += next.x.rows();
                    batch.push(next);
                }
                Err(RecvTimeoutError::Timeout) => break,
                // Scheduler dropped mid-drain: serve what we have (the
                // next outer recv() will observe the disconnect and exit).
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        serve_batch(engine, &batch, cfg, metrics);
    }
}

/// Execute one closed batch: coalesce rows per covariate width, run one
/// pinned-version forward pass per width group, slice results back to
/// their requests.
fn serve_batch(
    engine: &ServingEngine,
    batch: &[PendingRequest],
    cfg: &BatchConfig,
    metrics: &ServeMetrics,
) {
    let exec_start = Instant::now();
    for request in batch {
        metrics.record_queue_wait(exec_start.saturating_duration_since(request.enqueued));
        if let Some(trace) = &request.trace {
            trace.stamp(Stage::QueueWait);
        }
    }

    // Group by covariate width: the submit-time screen is best-effort
    // (the engine may be untrained, or hot-swapped since), and rows of
    // different widths cannot share a matrix. In the healthy steady
    // state there is exactly one group.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, request) in batch.iter().enumerate() {
        let cols = request.x.cols();
        match groups.iter_mut().find(|(c, _)| *c == cols) {
            Some((_, members)) => members.push(i),
            None => groups.push((cols, vec![i])),
        }
    }

    for (cols, members) in groups {
        // panic-ok: every i in `members` indexes into this same `batch`
        // (the grouping loop above produced them).
        let total_rows: usize = members.iter().map(|&i| batch[i].x.rows()).sum();
        let coalesced_owned;
        let coalesced: &Matrix = if members.len() == 1 {
            // panic-ok: members is non-empty and indexes `batch`.
            &batch[members[0]].x
        } else {
            let mut data = Vec::with_capacity(total_rows * cols);
            for &i in &members {
                // panic-ok: members indexes `batch` (see above).
                data.extend_from_slice(batch[i].x.as_slice());
            }
            coalesced_owned = Matrix::from_vec(total_rows, cols, data);
            &coalesced_owned
        };
        metrics.record_batch(members.len() as u64, total_rows as u64);
        for &i in &members {
            // panic-ok: members indexes `batch` (see above).
            if let Some(trace) = &batch[i].trace {
                trace.stamp(Stage::Batched);
            }
        }
        let outcome = engine.predict_ite_parallel_versioned(coalesced, cfg.worker_threads);
        for &i in &members {
            // panic-ok: members indexes `batch` (see above).
            if let Some(trace) = &batch[i].trace {
                trace.stamp(Stage::Inference);
            }
        }
        match outcome {
            Ok((version, ite)) => {
                let mut offset = 0;
                for &i in &members {
                    // panic-ok: members indexes `batch`, and `ite` holds
                    // exactly total_rows == sum of member rows entries,
                    // so every [offset, offset + n) window is in range.
                    let n = batch[i].x.rows();
                    // panic-ok: ite holds sum-of-member-rows entries, so
                    // every [offset, offset + n) window is in range.
                    let slice = ite[offset..offset + n].to_vec();
                    offset += n;
                    // A dropped ResponseHandle just discards its slice.
                    // panic-ok: members indexes `batch` (see above).
                    batch[i].slot.fulfill(Ok((version, slice)));
                }
            }
            Err(e) => {
                for &i in &members {
                    // panic-ok: members indexes `batch` (see above).
                    batch[i].slot.fulfill(Err(ServeError::Engine(e.clone())));
                }
            }
        }
    }
}

// Compile-time proof the scheduler may be shared across request threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BatchScheduler>();
    assert_send_sync::<ServeMetrics>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_core::config::CerlConfig;
    use cerl_core::engine::CerlEngineBuilder;
    use cerl_data::{DomainStream, SyntheticConfig, SyntheticGenerator};

    fn quick_cfg() -> CerlConfig {
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 6;
        cfg.memory_size = 80;
        cfg
    }

    fn quick_stream(domains: usize) -> DomainStream {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            61,
        );
        DomainStream::synthetic(&gen, domains, 0, 61)
    }

    fn trained_serving(stream: &DomainStream, stages: usize) -> Arc<ServingEngine> {
        let mut engine = CerlEngineBuilder::new(quick_cfg()).seed(8).build().unwrap();
        for d in 0..stages {
            engine
                .observe(&stream.domain(d).train, &stream.domain(d).val)
                .unwrap();
        }
        Arc::new(ServingEngine::new(engine))
    }

    #[test]
    fn batched_results_match_unbatched_bitwise() {
        let stream = quick_stream(1);
        let serving = trained_serving(&stream, 1);
        let scheduler = BatchScheduler::new(
            Arc::clone(&serving),
            BatchConfig {
                max_wait: Duration::from_millis(20),
                ..BatchConfig::default()
            },
        );
        let x = &stream.domain(0).test.x;

        // Submit several overlapping slices concurrently so they coalesce.
        let slices: Vec<Matrix> = (0..8).map(|i| x.slice_rows(i * 4, i * 4 + 4)).collect();
        let handles: Vec<ResponseHandle> = slices
            .iter()
            .map(|s| scheduler.submit(s.clone()).unwrap())
            .collect();
        for (slice, handle) in slices.iter().zip(handles) {
            let (version, batched) = handle.wait().unwrap();
            assert_eq!(version, 1);
            let reference = serving.predict_ite(slice).unwrap();
            assert_eq!(batched.len(), reference.len());
            for (a, b) in batched.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        let stats = scheduler.stats();
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.rejected, 0);
        assert!(stats.batches >= 1);
        assert_eq!(stats.batched_requests, 8);
        assert_eq!(stats.batched_rows, 32);
        assert_eq!(stats.mean_requests_per_batch(), 8.0 / stats.batches as f64);
        assert_eq!(stats.per_version_requests, vec![(1, 8)]);
        assert_eq!(stats.queue_wait.count, 8);
        assert_eq!(stats.end_to_end.count, 8);
        assert!(stats.end_to_end.p99 >= stats.queue_wait.p50);
    }

    #[test]
    fn f32_version_batches_bitwise_identically_to_unbatched() {
        use cerl_core::precision::PrecisionMode;
        let stream = quick_stream(1);
        let serving = trained_serving(&stream, 1);
        let bytes = serving.current().engine().save_bytes().unwrap();
        serving
            .swap_snapshot_bytes_with_precision(&bytes, PrecisionMode::F32)
            .unwrap();
        let scheduler = BatchScheduler::new(
            Arc::clone(&serving),
            BatchConfig {
                max_wait: Duration::from_millis(2),
                ..BatchConfig::default()
            },
        );
        assert_eq!(scheduler.precision(), PrecisionMode::F32);
        let x = stream.domain(0).test.x.slice_rows(0, 6);
        let (version, batched) = scheduler.predict_ite_versioned(&x).unwrap();
        assert_eq!(version, 2);
        // Per-mode contract at the scheduler layer: the batch path must
        // agree bitwise with the unbatched f32 call.
        let unbatched = serving.predict_ite(&x).unwrap();
        assert_eq!(batched.len(), unbatched.len());
        for (a, b) in batched.iter().zip(&unbatched) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn lone_request_is_served_within_the_latency_budget() {
        let stream = quick_stream(1);
        let serving = trained_serving(&stream, 1);
        let scheduler = BatchScheduler::new(
            Arc::clone(&serving),
            BatchConfig {
                max_batch_rows: 1_000_000, // never close on rows
                max_wait: Duration::from_millis(5),
                ..BatchConfig::default()
            },
        );
        let x = stream.domain(0).test.x.slice_rows(0, 3);
        let t0 = Instant::now();
        let ite = scheduler.predict_ite(&x).unwrap();
        // Generous bound: budget + one small forward pass + scheduling
        // noise on a loaded 1-CPU container.
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert_eq!(ite, serving.predict_ite(&x).unwrap());
    }

    #[test]
    fn malformed_requests_are_rejected_not_batched() {
        let stream = quick_stream(1);
        let serving = trained_serving(&stream, 1);
        let scheduler = BatchScheduler::with_defaults(Arc::clone(&serving));
        let x = &stream.domain(0).test.x;

        let wrong_width = Matrix::zeros(2, x.cols() + 1);
        assert!(matches!(
            scheduler.predict_ite(&wrong_width),
            Err(ServeError::Engine(CerlError::DimensionMismatch { .. }))
        ));
        let empty = Matrix::zeros(0, x.cols());
        assert!(matches!(
            scheduler.predict_ite(&empty),
            Err(ServeError::Engine(CerlError::EmptyInput { .. }))
        ));
        let stats = scheduler.stats();
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.batches, 0);
        // Submit-time rejections never enter a batch, so they must not
        // leak into the coalescing-shape accounting.
        assert_eq!(stats.batched_requests, 0);
        assert_eq!(stats.mean_requests_per_batch(), 0.0);
    }

    #[test]
    fn untrained_engine_errors_flow_back_per_request() {
        let untrained = Arc::new(ServingEngine::new(
            CerlEngineBuilder::new(quick_cfg()).build().unwrap(),
        ));
        let scheduler = BatchScheduler::new(
            untrained,
            BatchConfig {
                max_wait: Duration::from_millis(1),
                ..BatchConfig::default()
            },
        );
        // Width screening cannot run (no covariate dim yet); the batch
        // itself fails and each request receives the typed error.
        let a = scheduler.submit(Matrix::zeros(2, 5)).unwrap();
        let b = scheduler.submit(Matrix::zeros(2, 7)).unwrap();
        assert!(matches!(
            a.wait(),
            Err(ServeError::Engine(CerlError::NotTrained))
        ));
        assert!(matches!(
            b.wait(),
            Err(ServeError::Engine(CerlError::NotTrained))
        ));
        assert_eq!(scheduler.stats().rejected, 2);
    }

    #[test]
    fn full_queue_sheds_load_with_a_typed_error() {
        let stream = quick_stream(1);
        let serving = trained_serving(&stream, 1);
        // Queue capacity 1, batches close immediately: the queue can only
        // back up while the collector is inside a forward pass, so park it
        // there with one large request and probe the full queue.
        let scheduler = BatchScheduler::new(
            Arc::clone(&serving),
            BatchConfig {
                max_batch_rows: 1,
                max_wait: Duration::ZERO,
                queue_capacity: 1,
                ..BatchConfig::default()
            },
        );
        let base = &stream.domain(0).test.x;
        let idx: Vec<usize> = (0..30_000).map(|i| i % base.rows()).collect();
        let big = scheduler.submit(base.select_rows(&idx)).unwrap();
        // Wait for the collector to start executing the big batch
        // (record_batch precedes the forward pass), then the window in
        // which it cannot drain the queue is open for the whole pass.
        while scheduler.stats().batches == 0 {
            std::thread::yield_now();
        }
        let small = stream.domain(0).test.x.slice_rows(0, 2);
        let parked = scheduler.submit(small.clone()).unwrap();
        let rejected = scheduler.submit(small.clone());
        assert!(matches!(
            rejected,
            Err(ServeError::QueueFull { capacity: 1 })
        ));
        // Queued and in-flight requests still complete.
        assert!(big.wait().is_ok());
        assert!(parked.wait().is_ok());
        let stats = scheduler.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn response_handle_resolves_as_a_future_through_the_stored_waker() {
        use std::sync::atomic::AtomicBool;
        use std::task::Wake;

        /// Waker that flags readiness and unparks the polling thread —
        /// the same shape a socket reactor uses (flag a token, kick the
        /// event loop awake).
        struct Unparker {
            woken: AtomicBool,
            thread: std::thread::Thread,
        }
        impl Wake for Unparker {
            fn wake(self: Arc<Self>) {
                self.woken.store(true, Ordering::Release);
                self.thread.unpark();
            }
        }

        let stream = quick_stream(1);
        let serving = trained_serving(&stream, 1);
        let scheduler = BatchScheduler::new(
            Arc::clone(&serving),
            BatchConfig {
                max_wait: Duration::from_millis(10),
                ..BatchConfig::default()
            },
        );
        let x = stream.domain(0).test.x.slice_rows(0, 3);
        let mut handle = scheduler.submit(x.clone()).unwrap();

        let unparker = Arc::new(Unparker {
            woken: AtomicBool::new(false),
            thread: std::thread::current(),
        });
        let waker = Waker::from(Arc::clone(&unparker));
        let mut cx = Context::from_waker(&waker);
        let deadline = Instant::now() + Duration::from_secs(30);
        let (version, ite) = loop {
            match Pin::new(&mut handle).poll(&mut cx) {
                Poll::Ready(outcome) => break outcome.unwrap(),
                Poll::Pending => {
                    // Sleep until the collector fulfills the slot and the
                    // stored waker unparks us — no busy spin.
                    while !unparker.woken.swap(false, Ordering::Acquire) {
                        assert!(Instant::now() < deadline, "waker never fired");
                        std::thread::park_timeout(Duration::from_millis(50));
                    }
                }
            }
        };
        assert_eq!(version, 1);
        assert_eq!(ite, serving.predict_ite(&x).unwrap());
        let stats = scheduler.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.rejected_client, 0);
    }

    #[test]
    fn drop_drains_in_flight_requests_then_stops() {
        let stream = quick_stream(1);
        let serving = trained_serving(&stream, 1);
        let scheduler = BatchScheduler::new(
            Arc::clone(&serving),
            BatchConfig {
                max_wait: Duration::from_millis(200),
                ..BatchConfig::default()
            },
        );
        let x = stream.domain(0).test.x.slice_rows(0, 2);
        let handle = scheduler.submit(x.clone()).unwrap();
        drop(scheduler); // disconnects the queue; collector drains first
        let (version, ite) = handle.wait().unwrap();
        assert_eq!(version, 1);
        assert_eq!(ite, serving.predict_ite(&x).unwrap());
    }
}
