//! Perf-trajectory artifacts and the tolerance-banded regression diff.
//!
//! `diag --trajectory PATH` writes one [`TrajectoryReport`] per commit
//! (`results/BENCH_<pr>.json` in CI). This module owns the artifact's
//! schema and the comparison between two artifacts:
//! `diag --diff-trajectory NEW OLD [--band PCT] [--p95-band PCT]`
//! loads both, matches probes by name, and fails when the new artifact
//! dropped a probe, failed a correctness check, lost more throughput
//! than the band allows, or grew its p95 latency beyond its band.
//!
//! The bands exist because the CI container is a single noisy CPU: a
//! hard equality gate would flake on every run, while an unbounded diff
//! would let a real regression ride in under "the machine was slow".
//! CI runs the diff as a soft-fail step — the signal is the log line,
//! not a red build — but the exit code is real so a future lane can
//! promote it to a hard gate.

use serde::{Deserialize, Serialize};
use std::path::Path;

/// Machine-readable outcome of one diag probe — the unit of the
/// trajectory artifact. `passed == false` makes diag exit non-zero, so
/// the bench lane doubles as a correctness gate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// Probe name (`matmul`, `serving`, `batched`, `scatter`,
    /// `orchestrate`, `net`).
    pub probe: String,
    /// Sustained throughput of the probe's main measured path.
    pub rows_per_sec: f64,
    /// Median per-request latency of that path, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile per-request latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile per-request latency, milliseconds.
    pub p99_ms: f64,
    /// Whether every correctness check inside the probe held
    /// (bitwise-identical outputs, zero request errors, plan committed).
    pub passed: bool,
    /// Free-form probe-specific summary.
    pub detail: String,
}

impl ProbeRecord {
    /// A passing record from a probe's throughput and latency snapshot;
    /// the caller downgrades `passed` / fills `detail` afterwards.
    pub fn new(probe: &str, rows_per_sec: f64, latency: cerl_serve::LatencySnapshot) -> Self {
        Self {
            probe: probe.to_string(),
            rows_per_sec,
            p50_ms: latency.p50.as_secs_f64() * 1e3,
            p95_ms: latency.p95.as_secs_f64() * 1e3,
            p99_ms: latency.p99.as_secs_f64() * 1e3,
            passed: true,
            detail: String::new(),
        }
    }
}

/// The trajectory artifact: every probe's record plus enough metadata
/// to compare artifacts across commits.
#[derive(Debug, Serialize, Deserialize)]
pub struct TrajectoryReport {
    /// Artifact schema tag (`cerl-bench-trajectory/v1`).
    pub schema: String,
    /// Run scale the probes were measured at (`quick` / `standard` / …).
    pub scale: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// One record per probe, in execution order.
    pub probes: Vec<ProbeRecord>,
}

/// Load a trajectory artifact from disk.
pub fn load_report(path: &Path) -> Result<TrajectoryReport, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

/// Tolerance bands for the trajectory diff, in percent of the *old*
/// value. Defaults are sized for the 1-CPU CI container, where run-to-
/// run throughput noise of a few percent is normal and tail latency is
/// mostly a property of the machine.
#[derive(Debug, Clone, Copy)]
pub struct BandConfig {
    /// Maximum tolerated throughput drop, percent (default 10).
    pub max_rows_per_sec_drop_pct: f64,
    /// Maximum tolerated p95 latency rise, percent (default 50).
    pub max_p95_rise_pct: f64,
    /// Absolute p95 rises at or below this many milliseconds never
    /// fail, whatever the percentage says (default 2). The histogram
    /// behind these quantiles is bucket-resolution: a millisecond-scale
    /// p95 hopping one bucket reads as +70% while meaning nothing, so a
    /// ratio band alone would flake on every quiet probe.
    pub p95_slack_ms: f64,
}

impl Default for BandConfig {
    fn default() -> Self {
        Self {
            max_rows_per_sec_drop_pct: 10.0,
            max_p95_rise_pct: 50.0,
            p95_slack_ms: 2.0,
        }
    }
}

/// One probe's comparison in a [`TrajectoryDiff`].
#[derive(Debug, Clone)]
pub struct DiffLine {
    /// Probe name.
    pub probe: String,
    /// Human-readable comparison.
    pub summary: String,
    /// Whether this probe stayed inside every band.
    pub ok: bool,
}

/// Outcome of comparing two trajectory artifacts.
#[derive(Debug)]
pub struct TrajectoryDiff {
    /// One line per compared (or missing) probe.
    pub lines: Vec<DiffLine>,
    /// The bands the comparison used.
    pub band: BandConfig,
}

impl TrajectoryDiff {
    /// Whether every probe stayed inside its bands.
    pub fn ok(&self) -> bool {
        self.lines.iter().all(|l| l.ok)
    }

    /// Render the diff as an aligned report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "trajectory diff (bands: rows/sec drop <= {:.1}%, p95 rise <= {:.1}% or <= {:.1} ms)\n",
            self.band.max_rows_per_sec_drop_pct, self.band.max_p95_rise_pct, self.band.p95_slack_ms
        );
        for line in &self.lines {
            let mark = if line.ok { "ok  " } else { "FAIL" };
            out.push_str(&format!("  {mark} {:<12} {}\n", line.probe, line.summary));
        }
        out
    }
}

/// Percent change from `old` to `new`; positive means `new` is larger.
fn pct_change(new: f64, old: f64) -> f64 {
    if old.abs() < f64::EPSILON {
        return 0.0;
    }
    (new - old) / old * 100.0
}

/// Compare `new` against `old` probe-by-probe under `band`.
///
/// A probe present in `old` but absent from `new` is a failure (a lane
/// silently losing coverage is a regression); a probe new to `new` is
/// reported informationally and cannot fail.
pub fn diff_reports(
    new: &TrajectoryReport,
    old: &TrajectoryReport,
    band: BandConfig,
) -> TrajectoryDiff {
    let mut lines = Vec::new();
    for prev in &old.probes {
        let Some(cur) = new.probes.iter().find(|p| p.probe == prev.probe) else {
            lines.push(DiffLine {
                probe: prev.probe.clone(),
                summary: "probe missing from the new artifact".into(),
                ok: false,
            });
            continue;
        };
        let rows_pct = pct_change(cur.rows_per_sec, prev.rows_per_sec);
        let p95_pct = pct_change(cur.p95_ms, prev.p95_ms);
        let rows_ok = rows_pct >= -band.max_rows_per_sec_drop_pct;
        // A p95 that was effectively zero before cannot band a ratio,
        // and a rise inside the absolute slack is bucket jitter.
        let p95_ok = prev.p95_ms < 1e-6
            || cur.p95_ms - prev.p95_ms <= band.p95_slack_ms
            || p95_pct <= band.max_p95_rise_pct;
        let ok = cur.passed && rows_ok && p95_ok;
        let mut summary = format!(
            "{:>9.0} -> {:>9.0} rows/sec ({rows_pct:+.1}%) | p95 {:.2} -> {:.2} ms ({p95_pct:+.1}%)",
            prev.rows_per_sec, cur.rows_per_sec, prev.p95_ms, cur.p95_ms
        );
        if !cur.passed {
            summary.push_str(" | correctness check FAILED");
        }
        lines.push(DiffLine {
            probe: prev.probe.clone(),
            summary,
            ok,
        });
    }
    for cur in &new.probes {
        if !old.probes.iter().any(|p| p.probe == cur.probe) {
            lines.push(DiffLine {
                probe: cur.probe.clone(),
                summary: format!(
                    "new probe: {:>9.0} rows/sec, p95 {:.2} ms (no baseline)",
                    cur.rows_per_sec, cur.p95_ms
                ),
                ok: true,
            });
        }
    }
    TrajectoryDiff { lines, band }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(name: &str, rows: f64, p95: f64) -> ProbeRecord {
        ProbeRecord {
            probe: name.into(),
            rows_per_sec: rows,
            p50_ms: p95 / 2.0,
            p95_ms: p95,
            p99_ms: p95 * 2.0,
            passed: true,
            detail: String::new(),
        }
    }

    fn report(probes: Vec<ProbeRecord>) -> TrajectoryReport {
        TrajectoryReport {
            schema: "cerl-bench-trajectory/v1".into(),
            scale: "quick".into(),
            seed: 7,
            probes,
        }
    }

    #[test]
    fn noise_inside_the_band_passes() {
        let old = report(vec![
            probe("net", 30000.0, 1.5),
            probe("serving", 9000.0, 0.8),
        ]);
        let new = report(vec![
            probe("net", 28000.0, 1.9),
            probe("serving", 9400.0, 0.7),
        ]);
        let diff = diff_reports(&new, &old, BandConfig::default());
        assert!(diff.ok(), "{}", diff.render());
        assert_eq!(diff.lines.len(), 2);
    }

    #[test]
    fn throughput_drop_beyond_band_fails() {
        let old = report(vec![probe("net", 30000.0, 1.5)]);
        let new = report(vec![probe("net", 20000.0, 1.5)]);
        let diff = diff_reports(&new, &old, BandConfig::default());
        assert!(!diff.ok());
        assert!(diff.render().contains("FAIL net"), "{}", diff.render());
        // A wider band admits the same drop.
        let wide = BandConfig {
            max_rows_per_sec_drop_pct: 40.0,
            ..BandConfig::default()
        };
        assert!(diff_reports(&new, &old, wide).ok());
    }

    #[test]
    fn p95_rise_beyond_band_fails() {
        let old = report(vec![probe("scatter", 5000.0, 10.0)]);
        let new = report(vec![probe("scatter", 5000.0, 16.0)]);
        assert!(!diff_reports(&new, &old, BandConfig::default()).ok());
        assert!(diff_reports(&new, &old, BandConfig::default())
            .render()
            .contains("+60.0%"));
    }

    #[test]
    fn sub_slack_p95_bucket_jitter_passes_whatever_the_ratio_says() {
        // 1.05 ms -> 1.77 ms is one histogram bucket (+69%): huge as a
        // ratio, meaningless as a latency change.
        let old = report(vec![probe("orchestrate", 5000.0, 1.05)]);
        let new = report(vec![probe("orchestrate", 5000.0, 1.77)]);
        let diff = diff_reports(&new, &old, BandConfig::default());
        assert!(diff.ok(), "{}", diff.render());
        // Squeezing the slack to zero restores the pure ratio band.
        let strict = BandConfig {
            p95_slack_ms: 0.0,
            ..BandConfig::default()
        };
        assert!(!diff_reports(&new, &old, strict).ok());
    }

    #[test]
    fn missing_probe_and_failed_probe_are_regressions() {
        let old = report(vec![
            probe("net", 30000.0, 1.5),
            probe("scatter", 5000.0, 1.0),
        ]);
        let new = report(vec![probe("net", 30000.0, 1.5)]);
        let diff = diff_reports(&new, &old, BandConfig::default());
        assert!(!diff.ok());
        assert!(diff.render().contains("missing"), "{}", diff.render());

        let mut failed = report(vec![probe("net", 30000.0, 1.5)]);
        failed.probes[0].passed = false;
        let old = report(vec![probe("net", 30000.0, 1.5)]);
        let diff = diff_reports(&failed, &old, BandConfig::default());
        assert!(!diff.ok());
        assert!(diff.render().contains("correctness check FAILED"));
    }

    #[test]
    fn brand_new_probe_is_informational() {
        let old = report(vec![probe("net", 30000.0, 1.5)]);
        let new = report(vec![probe("net", 30000.0, 1.5), probe("udp", 1000.0, 0.1)]);
        let diff = diff_reports(&new, &old, BandConfig::default());
        assert!(diff.ok());
        assert!(diff.render().contains("no baseline"), "{}", diff.render());
    }

    #[test]
    fn artifacts_roundtrip_through_json() {
        let report = report(vec![probe("net", 31050.06, 1.52)]);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: TrajectoryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.probes[0].probe, "net");
        assert_eq!(back.probes[0].rows_per_sec, 31050.06);
        assert!(back.probes[0].passed);
    }
}
