//! # cerl-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! CERL paper, plus criterion micro-benchmarks (see `benches/`).
//!
//! Binaries (`cargo run -p cerl-bench --release --bin <name> [-- flags]`):
//!
//! | binary   | reproduces | notes |
//! |----------|------------|-------|
//! | `table1` | Table I    | News + BlogCatalog, 3 shift scenarios, M=500 |
//! | `table2` | Table II   | synthetic, strategies + 3 ablations, M=10000 |
//! | `fig3ab` | Fig. 3 a,b | 5 domains, memory budgets vs ideal; `--ablate-cosine` adds the in-text ablation |
//! | `fig3cd` | Fig. 3 c,d | α and δ sensitivity sweeps |
//!
//! Common flags: `--quick`, `--standard` (default), `--full`, `--reps N`,
//! `--seed S`. Results are printed as aligned tables and dumped to
//! `results/*.json`.

pub mod experiments;
pub mod fig3;
pub mod report;
pub mod scale;
pub mod table1;
pub mod table2;
pub mod trajectory;

pub use scale::{RunArgs, Scale};
pub use trajectory::{BandConfig, ProbeRecord, TrajectoryReport};
