//! Run-scale presets and a tiny CLI-flag parser shared by the harness
//! binaries.
//!
//! * `--quick` — minutes-scale runs that preserve the papers' qualitative
//!   shapes (who wins, orderings, crossovers) at reduced unit counts.
//! * `--standard` (default) — larger runs balancing fidelity and time.
//! * `--full` — paper-scale parameters (hours on a laptop; provided for
//!   completeness).
//! * `--reps N`, `--seed S` — replications and base seed.

use cerl_core::config::{CerlConfig, NetConfig, TrainConfig};
use cerl_data::{SemiSyntheticConfig, SyntheticConfig, TopicModelConfig};
use serde::Serialize;

/// Scale preset of one harness invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scale {
    /// Minutes-scale smoke runs.
    Quick,
    /// Default: qualitative fidelity within a coffee break.
    Standard,
    /// Paper-scale parameters.
    Full,
}

/// Parsed common flags.
#[derive(Debug, Clone, Serialize)]
pub struct RunArgs {
    /// Scale preset.
    pub scale: Scale,
    /// Number of replications to average.
    pub reps: usize,
    /// Base seed.
    pub seed: u64,
    /// Leftover flags for experiment-specific switches.
    pub extra: Vec<String>,
}

impl RunArgs {
    /// Parse `std::env::args` style iterators.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut scale = Scale::Standard;
        let mut reps: Option<usize> = None;
        let mut seed = 2023;
        let mut extra = Vec::new();
        let mut it = args.peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => scale = Scale::Quick,
                "--standard" => scale = Scale::Standard,
                "--full" => scale = Scale::Full,
                "--reps" => {
                    reps = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--reps needs an integer"),
                    );
                }
                "--seed" => {
                    seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                other => extra.push(other.to_string()),
            }
        }
        let reps = reps.unwrap_or(match scale {
            Scale::Quick => 2,
            Scale::Standard => 3,
            Scale::Full => 10,
        });
        Self {
            scale,
            reps,
            seed,
            extra,
        }
    }

    /// True when an experiment-specific flag is present.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.extra.iter().any(|f| f == flag)
    }
}

/// News benchmark config at this scale.
pub fn news_config(scale: Scale) -> SemiSyntheticConfig {
    match scale {
        Scale::Full => SemiSyntheticConfig::news(),
        Scale::Standard => SemiSyntheticConfig {
            n_units: 1500,
            topics: TopicModelConfig {
                n_topics: 50,
                vocab_size: 600,
                word_alpha: 0.05,
                doc_alpha: 0.2,
                doc_length: (40, 160),
                background_mix: 0.4,
            },
            ..SemiSyntheticConfig::news()
        },
        Scale::Quick => SemiSyntheticConfig {
            n_units: 600,
            topics: TopicModelConfig {
                n_topics: 50,
                vocab_size: 300,
                word_alpha: 0.05,
                doc_alpha: 0.2,
                doc_length: (30, 100),
                background_mix: 0.4,
            },
            ..SemiSyntheticConfig::news()
        },
    }
}

/// BlogCatalog benchmark config at this scale.
pub fn blogcatalog_config(scale: Scale) -> SemiSyntheticConfig {
    match scale {
        Scale::Full => SemiSyntheticConfig::blogcatalog(),
        Scale::Standard => SemiSyntheticConfig {
            n_units: 1500,
            topics: TopicModelConfig {
                n_topics: 50,
                vocab_size: 450,
                word_alpha: 0.08,
                doc_alpha: 0.15,
                doc_length: (15, 80),
                background_mix: 0.35,
            },
            ..SemiSyntheticConfig::blogcatalog()
        },
        Scale::Quick => SemiSyntheticConfig {
            n_units: 600,
            topics: TopicModelConfig {
                n_topics: 50,
                vocab_size: 250,
                word_alpha: 0.08,
                doc_alpha: 0.15,
                doc_length: (15, 60),
                background_mix: 0.35,
            },
            ..SemiSyntheticConfig::blogcatalog()
        },
    }
}

/// Synthetic (§IV.C) config at this scale. The variable-role structure is
/// always the paper's 100-covariate layout. Reduced scales lower the
/// outcome noise and raise the domain-shift magnitude so the paper's
/// qualitative contrasts (forgetting, shift degradation) remain visible at
/// a fraction of the sample size.
pub fn synthetic_config(scale: Scale) -> SyntheticConfig {
    match scale {
        Scale::Full => SyntheticConfig {
            n_units: 10_000,
            ..SyntheticConfig::default()
        },
        Scale::Standard => SyntheticConfig {
            n_units: 2_000,
            noise_sd: 0.5,
            mean_shift_scale: 1.0,
            sd_range: (0.5, 1.5),
            ..SyntheticConfig::default()
        },
        Scale::Quick => SyntheticConfig {
            n_units: 800,
            noise_sd: 0.4,
            mean_shift_scale: 1.0,
            sd_range: (0.5, 1.5),
            ..SyntheticConfig::default()
        },
    }
}

/// Units per synthetic domain at this scale (for memory-budget ratios).
pub fn synthetic_units(scale: Scale) -> usize {
    synthetic_config(scale).n_units
}

/// Model/optimizer configuration used by all experiments at this scale.
pub fn model_config(scale: Scale) -> CerlConfig {
    let train = match scale {
        Scale::Full => TrainConfig {
            epochs: 150,
            batch_size: 128,
            learning_rate: 1e-3,
            clip_norm: 5.0,
            patience: 15,
            memory_batch_size: 128,
            phi_warmup_steps: 300,
        },
        Scale::Standard => TrainConfig {
            epochs: 90,
            batch_size: 128,
            learning_rate: 1.5e-3,
            clip_norm: 5.0,
            patience: 12,
            memory_batch_size: 128,
            phi_warmup_steps: 200,
        },
        Scale::Quick => TrainConfig {
            epochs: 60,
            batch_size: 64,
            learning_rate: 2e-3,
            clip_norm: 5.0,
            patience: 12,
            memory_batch_size: 64,
            phi_warmup_steps: 150,
        },
    };
    let net = match scale {
        Scale::Full => NetConfig::default(),
        _ => NetConfig {
            repr_hidden: vec![64],
            repr_dim: 32,
            head_hidden: vec![32],
            transform_hidden: vec![64],
            ..NetConfig::default()
        },
    };
    CerlConfig {
        net,
        train,
        ..CerlConfig::default()
    }
}

/// Memory budget for Table I (paper: M = 500) scaled with the unit count.
pub fn table1_memory(scale: Scale) -> usize {
    match scale {
        Scale::Full => 500,
        Scale::Standard => 150, // 500 × (1500/5000)
        Scale::Quick => 60,     // 500 × (600/5000)
    }
}

/// Memory budget for Table II. The paper uses M = 10000 (one full domain);
/// at reduced scales we use n/2 so the budget actually binds against the
/// 60% training split and the herding-vs-random ablation is exercised.
pub fn table2_memory(scale: Scale) -> usize {
    match scale {
        Scale::Full => 10_000,
        _ => synthetic_units(scale) / 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> RunArgs {
        RunArgs::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, Scale::Standard);
        assert_eq!(a.reps, 3);
        assert_eq!(a.seed, 2023);
    }

    #[test]
    fn flags() {
        let a = parse(&["--quick", "--reps", "5", "--seed", "9", "--ablate-cosine"]);
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.reps, 5);
        assert_eq!(a.seed, 9);
        assert!(a.has_flag("--ablate-cosine"));
        assert!(!a.has_flag("--other"));
    }

    #[test]
    fn scale_monotonicity() {
        assert!(news_config(Scale::Quick).n_units < news_config(Scale::Standard).n_units);
        assert!(news_config(Scale::Standard).n_units < news_config(Scale::Full).n_units);
        assert!(synthetic_units(Scale::Quick) < synthetic_units(Scale::Full));
        assert_eq!(table2_memory(Scale::Full), 10_000);
        // Topic count is always the paper's 50 so shift semantics match.
        for s in [Scale::Quick, Scale::Standard, Scale::Full] {
            assert_eq!(news_config(s).topics.n_topics, 50);
            assert_eq!(blogcatalog_config(s).topics.n_topics, 50);
        }
    }
}
