//! Table rendering and machine-readable result dumps.

use serde::Serialize;
use std::fs;
use std::path::{Path, PathBuf};

/// Format a metric with the paper's "↑" significance marker.
pub fn fmt_metric(value: f64, worse: bool) -> String {
    if worse {
        format!("{value:.2}↑")
    } else {
        format!("{value:.2}")
    }
}

/// Render an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "render_table: ragged row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {:<width$} ", c, width = w))
            .collect::<Vec<_>>()
            .join("|")
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Directory where harness binaries drop JSON results.
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Serialize a result payload to `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, payload: &T) -> std::io::Result<PathBuf> {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(payload).expect("serializable payload");
    fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_formatting() {
        assert_eq!(fmt_metric(2.456, false), "2.46");
        assert_eq!(fmt_metric(2.456, true), "2.46↑");
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name") && lines[0].contains("value"));
        assert!(lines[2].starts_with(" a"));
    }

    #[test]
    #[should_panic(expected = "ragged row")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn json_roundtrip() {
        #[derive(Serialize)]
        struct P {
            x: f64,
        }
        let path = write_json("test-report", &P { x: 1.5 }).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("1.5"));
        let _ = std::fs::remove_file(path);
    }
}
