//! Shared experiment machinery: estimator specifications, stream
//! evaluation, and significance marking.

use cerl_core::config::CerlConfig;
use cerl_core::metrics::{mean_metrics, EffectMetrics};
use cerl_core::strategies::{CfrA, CfrB, CfrC, ContinualEstimator};
use cerl_core::Cerl;
use cerl_data::{CausalDataset, DomainStream};
use cerl_math::stats::paired_t_test;
use cerl_rand::seeds;
use serde::Serialize;

/// Which estimator a table row uses (paper Tables I–II rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EstimatorSpec {
    /// Apply the first-domain model unchanged.
    CfrA,
    /// Fine-tune on each new domain.
    CfrB,
    /// Retrain from scratch on all stored raw data.
    CfrC,
    /// The paper's method.
    Cerl,
    /// Ablation: without feature-representation transformation.
    CerlWithoutFrt,
    /// Ablation: random subsampling instead of herding.
    CerlWithoutHerding,
    /// Ablation: plain dense final layer instead of cosine normalization.
    CerlWithoutCosine,
}

impl EstimatorSpec {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            EstimatorSpec::CfrA => "CFR-A",
            EstimatorSpec::CfrB => "CFR-B",
            EstimatorSpec::CfrC => "CFR-C",
            EstimatorSpec::Cerl => "CERL",
            EstimatorSpec::CerlWithoutFrt => "CERL (w/o FRT)",
            EstimatorSpec::CerlWithoutHerding => "CERL (w/o herding)",
            EstimatorSpec::CerlWithoutCosine => "CERL (w/o cosine)",
        }
    }

    /// Instantiate for `d_in` covariates with the given base configuration.
    pub fn build(&self, d_in: usize, base: &CerlConfig, seed: u64) -> Box<dyn ContinualEstimator> {
        let mut cfg = base.clone();
        match self {
            EstimatorSpec::CfrA => return Box::new(CfrA::new(d_in, cfg, seed)),
            EstimatorSpec::CfrB => return Box::new(CfrB::new(d_in, cfg, seed)),
            EstimatorSpec::CfrC => return Box::new(CfrC::new(d_in, cfg, seed)),
            EstimatorSpec::Cerl => {}
            EstimatorSpec::CerlWithoutFrt => cfg.ablation.feature_transform = false,
            EstimatorSpec::CerlWithoutHerding => cfg.ablation.herding = false,
            EstimatorSpec::CerlWithoutCosine => cfg.ablation.cosine_norm = false,
        }
        Box::new(Cerl::new(d_in, cfg, seed))
    }

    /// The four main strategies of Tables I–II.
    pub fn main_lineup() -> [EstimatorSpec; 4] {
        [
            EstimatorSpec::CfrA,
            EstimatorSpec::CfrB,
            EstimatorSpec::CfrC,
            EstimatorSpec::Cerl,
        ]
    }

    /// Main strategies plus the three ablations (Table II).
    pub fn table2_lineup() -> [EstimatorSpec; 7] {
        [
            EstimatorSpec::CfrA,
            EstimatorSpec::CfrB,
            EstimatorSpec::CfrC,
            EstimatorSpec::Cerl,
            EstimatorSpec::CerlWithoutFrt,
            EstimatorSpec::CerlWithoutHerding,
            EstimatorSpec::CerlWithoutCosine,
        ]
    }
}

/// Per-replication metrics of one estimator on a two-domain stream:
/// previous-domain and new-domain test metrics after seeing both domains.
#[derive(Debug, Clone, Serialize)]
pub struct TwoDomainOutcome {
    /// Strategy label.
    pub strategy: String,
    /// Previous-domain test metrics per replication.
    pub prev: Vec<EffectMetrics>,
    /// New-domain test metrics per replication.
    pub new: Vec<EffectMetrics>,
}

/// Feed every domain of `stream` to the estimator in arrival order, then
/// evaluate on each seen domain's test set.
pub fn run_stream(est: &mut dyn ContinualEstimator, stream: &DomainStream) -> Vec<EffectMetrics> {
    for d in 0..stream.len() {
        est.observe(&stream.domain(d).train, &stream.domain(d).val);
    }
    (0..stream.len())
        .map(|d| est.evaluate(&stream.domain(d).test))
        .collect()
}

/// Run a lineup of estimators over per-replication two-domain streams.
///
/// `streams[r]` is replication `r`'s stream (must have exactly 2 domains).
pub fn run_two_domain_comparison(
    specs: &[EstimatorSpec],
    streams: &[DomainStream],
    cfg: &CerlConfig,
    seed: u64,
) -> Vec<TwoDomainOutcome> {
    assert!(
        streams.iter().all(|s| s.len() == 2),
        "two-domain comparison needs 2 domains"
    );
    specs
        .iter()
        .map(|spec| {
            let mut prev = Vec::with_capacity(streams.len());
            let mut new = Vec::with_capacity(streams.len());
            for (r, stream) in streams.iter().enumerate() {
                let d_in = stream.domain(0).train.dim();
                let mut est = spec.build(d_in, cfg, seeds::derive(seed, r as u64));
                let ms = run_stream(est.as_mut(), stream);
                prev.push(ms[0]);
                new.push(ms[1]);
            }
            TwoDomainOutcome {
                strategy: spec.label().to_string(),
                prev,
                new,
            }
        })
        .collect()
}

/// One formatted table cell: replication means plus significance markers
/// against the reference strategy (the paper's "↑" = statistically
/// significantly worse than CERL at p < 0.05).
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonCell {
    /// Mean `√ε_PEHE` across replications.
    pub sqrt_pehe: f64,
    /// Mean `ε_ATE` across replications.
    pub ate_error: f64,
    /// "↑" marker on PEHE.
    pub pehe_worse: bool,
    /// "↑" marker on ATE error.
    pub ate_worse: bool,
}

/// Summarize a strategy's replication metrics against a reference
/// (typically CERL's) with paired t-tests at `p < 0.05`.
pub fn summarize_vs_reference(
    metrics: &[EffectMetrics],
    reference: &[EffectMetrics],
) -> ComparisonCell {
    let mean = mean_metrics(metrics);
    let ref_mean = mean_metrics(reference);
    let pehe_a: Vec<f64> = metrics.iter().map(|m| m.sqrt_pehe).collect();
    let pehe_b: Vec<f64> = reference.iter().map(|m| m.sqrt_pehe).collect();
    let ate_a: Vec<f64> = metrics.iter().map(|m| m.ate_error).collect();
    let ate_b: Vec<f64> = reference.iter().map(|m| m.ate_error).collect();
    let sig = |a: &[f64], b: &[f64], worse: bool| -> bool {
        if a.len() < 2 || !worse {
            return false;
        }
        paired_t_test(a, b)
            .map(|t| t.p_value < 0.05 && t.mean_diff > 0.0)
            .unwrap_or(false)
    };
    ComparisonCell {
        sqrt_pehe: mean.sqrt_pehe,
        ate_error: mean.ate_error,
        pehe_worse: sig(&pehe_a, &pehe_b, mean.sqrt_pehe > ref_mean.sqrt_pehe),
        ate_worse: sig(&ate_a, &ate_b, mean.ate_error > ref_mean.ate_error),
    }
}

/// Metrics on the union of several test sets (used by Fig. 3 (a,b), where
/// the paper reports performance on "test sets composed of previous data
/// and new data").
pub fn union_metrics(est: &dyn ContinualEstimator, tests: &[&CausalDataset]) -> EffectMetrics {
    let mut true_ite = Vec::new();
    let mut est_ite = Vec::new();
    for t in tests {
        true_ite.extend(t.true_ite());
        est_ite.extend(est.predict_ite(&t.x));
    }
    EffectMetrics::from_ite(&true_ite, &est_ite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_data::{SyntheticConfig, SyntheticGenerator};

    fn tiny_cfg() -> CerlConfig {
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 4;
        cfg
    }

    fn tiny_streams(reps: usize) -> Vec<DomainStream> {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 200,
                ..SyntheticConfig::small()
            },
            3,
        );
        (0..reps)
            .map(|r| DomainStream::synthetic(&gen, 2, r, 8))
            .collect()
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = EstimatorSpec::table2_lineup()
            .iter()
            .map(|s| s.label())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 7);
    }

    #[test]
    fn comparison_produces_per_rep_metrics() {
        let streams = tiny_streams(2);
        let out = run_two_domain_comparison(
            &[EstimatorSpec::CfrA, EstimatorSpec::Cerl],
            &streams,
            &tiny_cfg(),
            1,
        );
        assert_eq!(out.len(), 2);
        for o in &out {
            assert_eq!(o.prev.len(), 2);
            assert_eq!(o.new.len(), 2);
        }
    }

    #[test]
    fn significance_markers_require_worse_mean() {
        let good = vec![
            EffectMetrics {
                sqrt_pehe: 1.0,
                ate_error: 0.1,
            },
            EffectMetrics {
                sqrt_pehe: 1.1,
                ate_error: 0.11,
            },
            EffectMetrics {
                sqrt_pehe: 0.9,
                ate_error: 0.09,
            },
        ];
        let clearly_worse: Vec<EffectMetrics> = good
            .iter()
            .map(|m| EffectMetrics {
                sqrt_pehe: m.sqrt_pehe + 1.0,
                ate_error: m.ate_error + 0.5,
            })
            .collect();
        let cell = summarize_vs_reference(&clearly_worse, &good);
        assert!(cell.pehe_worse && cell.ate_worse);
        let self_cell = summarize_vs_reference(&good, &good);
        assert!(!self_cell.pehe_worse && !self_cell.ate_worse);
    }

    #[test]
    fn union_metrics_concatenates() {
        let streams = tiny_streams(1);
        let mut est = EstimatorSpec::CfrA.build(streams[0].domain(0).train.dim(), &tiny_cfg(), 5);
        est.observe(&streams[0].domain(0).train, &streams[0].domain(0).val);
        let tests = streams[0].test_sets_up_to(1);
        let m = union_metrics(est.as_ref(), &tests);
        assert!(m.sqrt_pehe.is_finite());
    }
}
