//! Figure 3 — CERL across five sequential domains.
//!
//! * (a,b): `√ε_PEHE` / `ε_ATE` on the union of all seen test sets after
//!   each domain, for memory budgets M ∈ {n/10, n/2, n} (paper: 1000 /
//!   5000 / 10000 at n = 10000) against the ideal all-data retraining.
//!   `--ablate-cosine` additionally runs the in-text cosine-normalization
//!   ablation at M = n/2.
//! * (c,d): robustness to the representation-balance weight α and the
//!   transformation weight δ on a two-domain stream.

use crate::experiments::{union_metrics, EstimatorSpec};
use crate::report::{render_table, write_json};
use crate::scale::{model_config, synthetic_config, synthetic_units, RunArgs};
use cerl_core::config::CerlConfig;
use cerl_core::metrics::{mean_metrics, EffectMetrics};
use cerl_data::{DomainStream, SyntheticGenerator};
use cerl_rand::seeds;
use serde::Serialize;

/// Number of sequential domains in Fig. 3 (a,b) / Fig. 4.
pub const N_DOMAINS: usize = 5;

/// One point of the Fig. 3 (a,b) series.
#[derive(Debug, Clone, Serialize)]
pub struct SeriesPoint {
    /// Series label (e.g. "CERL M=1000" or "Ideal (all data)").
    pub series: String,
    /// 1-based count of domains seen so far.
    pub after_domain: usize,
    /// Mean metrics on the union of seen test sets.
    pub metrics: EffectMetrics,
}

/// Result of the Fig. 3 (a,b) experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3abResult {
    /// Run arguments.
    pub args: RunArgs,
    /// Units per domain (budgets are ratios of this).
    pub units_per_domain: usize,
    /// All series points.
    pub points: Vec<SeriesPoint>,
}

/// Run Fig. 3 (a,b).
pub fn run_ab(args: &RunArgs) -> Fig3abResult {
    let n = synthetic_units(args.scale);
    let budgets = [n / 10, n / 2, n];
    let gen = SyntheticGenerator::new(synthetic_config(args.scale), args.seed);
    let streams: Vec<DomainStream> = (0..args.reps)
        .map(|r| DomainStream::synthetic(&gen, N_DOMAINS, r, args.seed))
        .collect();

    let mut points = Vec::new();

    // CERL at each memory budget.
    for &m in &budgets {
        let label = format!("CERL M={m}");
        eprintln!("[fig3ab] {label} …");
        let cfg = {
            let mut c = model_config(args.scale);
            c.memory_size = m;
            c
        };
        points.extend(run_series(
            &label,
            EstimatorSpec::Cerl,
            &cfg,
            &streams,
            args.seed,
        ));
    }

    // Optional in-text ablation: no cosine normalization at M = n/2.
    if args.has_flag("--ablate-cosine") {
        let label = format!("CERL (w/o cosine) M={}", n / 2);
        eprintln!("[fig3ab] {label} …");
        let cfg = {
            let mut c = model_config(args.scale);
            c.memory_size = n / 2;
            c.ablation.cosine_norm = false;
            c
        };
        points.extend(run_series(
            &label,
            EstimatorSpec::Cerl,
            &cfg,
            &streams,
            args.seed,
        ));
    }

    // Ideal: retrain from scratch on all raw data after each domain.
    eprintln!("[fig3ab] Ideal (all data) …");
    let cfg = model_config(args.scale);
    points.extend(run_series(
        "Ideal (all data)",
        EstimatorSpec::CfrC,
        &cfg,
        &streams,
        args.seed,
    ));

    Fig3abResult {
        args: args.clone(),
        units_per_domain: n,
        points,
    }
}

/// Evaluate one estimator spec over all replications, reporting union-test
/// metrics after each domain.
fn run_series(
    label: &str,
    spec: EstimatorSpec,
    cfg: &CerlConfig,
    streams: &[DomainStream],
    seed: u64,
) -> Vec<SeriesPoint> {
    let mut per_domain: Vec<Vec<EffectMetrics>> = vec![Vec::new(); N_DOMAINS];
    for (r, stream) in streams.iter().enumerate() {
        let d_in = stream.domain(0).train.dim();
        let mut est = spec.build(d_in, cfg, seeds::derive(seed, r as u64));
        #[allow(clippy::needless_range_loop)] // d indexes both stream and accumulator
        for d in 0..stream.len() {
            est.observe(&stream.domain(d).train, &stream.domain(d).val);
            let tests = stream.test_sets_up_to(d);
            per_domain[d].push(union_metrics(est.as_ref(), &tests));
        }
    }
    per_domain
        .into_iter()
        .enumerate()
        .map(|(d, ms)| SeriesPoint {
            series: label.to_string(),
            after_domain: d + 1,
            metrics: mean_metrics(&ms),
        })
        .collect()
}

/// Print Fig. 3 (a,b) series and dump JSON.
pub fn print_ab(result: &Fig3abResult) {
    println!(
        "\nFigure 3 (a,b) — {} sequential domains, {} units/domain ({} reps)",
        N_DOMAINS, result.units_per_domain, result.args.reps
    );
    let headers = vec![
        "series",
        "after domain",
        "√PEHE (all seen)",
        "εATE (all seen)",
    ];
    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            vec![
                p.series.clone(),
                p.after_domain.to_string(),
                format!("{:.2}", p.metrics.sqrt_pehe),
                format!("{:.2}", p.metrics.ate_error),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    match write_json("fig3ab", result) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

/// One point of the Fig. 3 (c,d) sensitivity sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Swept hyper-parameter ("alpha" or "delta").
    pub parameter: String,
    /// Value used.
    pub value: f64,
    /// Previous-domain metrics.
    pub previous: EffectMetrics,
    /// New-domain metrics.
    pub new: EffectMetrics,
}

/// Result of the Fig. 3 (c,d) experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3cdResult {
    /// Run arguments.
    pub args: RunArgs,
    /// Sweep points.
    pub points: Vec<SweepPoint>,
}

/// Run Fig. 3 (c,d): sweep α and δ over decades on two-domain streams.
pub fn run_cd(args: &RunArgs) -> Fig3cdResult {
    let values = [1e-3, 1e-2, 1e-1, 1.0, 10.0];
    let gen = SyntheticGenerator::new(synthetic_config(args.scale), args.seed);
    let streams: Vec<DomainStream> = (0..args.reps)
        .map(|r| DomainStream::synthetic(&gen, 2, r, args.seed))
        .collect();

    let mut points = Vec::new();
    for (param, setter) in [
        (
            "alpha",
            (|c: &mut CerlConfig, v: f64| c.alpha = v) as fn(&mut CerlConfig, f64),
        ),
        ("delta", |c: &mut CerlConfig, v: f64| c.delta = v),
    ] {
        for &v in &values {
            eprintln!("[fig3cd] {param} = {v} …");
            let mut cfg = model_config(args.scale);
            cfg.memory_size = synthetic_units(args.scale) / 2;
            setter(&mut cfg, v);
            let mut prev = Vec::new();
            let mut new = Vec::new();
            for (r, stream) in streams.iter().enumerate() {
                let d_in = stream.domain(0).train.dim();
                let mut est =
                    EstimatorSpec::Cerl.build(d_in, &cfg, seeds::derive(args.seed, r as u64));
                let ms = crate::experiments::run_stream(est.as_mut(), stream);
                prev.push(ms[0]);
                new.push(ms[1]);
            }
            points.push(SweepPoint {
                parameter: param.to_string(),
                value: v,
                previous: mean_metrics(&prev),
                new: mean_metrics(&new),
            });
        }
    }
    Fig3cdResult {
        args: args.clone(),
        points,
    }
}

/// Print Fig. 3 (c,d) sweeps and dump JSON.
pub fn print_cd(result: &Fig3cdResult) {
    println!(
        "\nFigure 3 (c,d) — hyper-parameter robustness ({} reps)",
        result.args.reps
    );
    let headers = vec![
        "parameter",
        "value",
        "prev √PEHE",
        "prev εATE",
        "new √PEHE",
        "new εATE",
    ];
    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            vec![
                p.parameter.clone(),
                format!("{}", p.value),
                format!("{:.2}", p.previous.sqrt_pehe),
                format!("{:.2}", p.previous.ate_error),
                format!("{:.2}", p.new.sqrt_pehe),
                format!("{:.2}", p.new.ate_error),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    match write_json("fig3cd", result) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
