//! Table I — News & BlogCatalog, two sequential domains, M = 500:
//! CFR-A/B/C vs CERL under substantial / moderate / no domain shift.

use crate::experiments::{
    run_two_domain_comparison, summarize_vs_reference, ComparisonCell, EstimatorSpec,
    TwoDomainOutcome,
};
use crate::report::{fmt_metric, render_table, write_json};
use crate::scale::{blogcatalog_config, model_config, news_config, table1_memory, RunArgs};
use cerl_data::{DomainStream, SemiSyntheticGenerator};
use serde::Serialize;

/// One row of Table I.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// "News" or "BlogCatalog".
    pub dataset: String,
    /// Shift scenario label.
    pub shift: String,
    /// Strategy label.
    pub strategy: String,
    /// Previous-domain test metrics.
    pub previous: ComparisonCell,
    /// New-domain test metrics.
    pub new: ComparisonCell,
}

/// Full result of the Table I experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Result {
    /// Run arguments.
    pub args: RunArgs,
    /// Memory budget used for CERL.
    pub memory: usize,
    /// All rows, in paper order.
    pub rows: Vec<Table1Row>,
}

/// Run the Table I experiment.
pub fn run(args: &RunArgs) -> Table1Result {
    let mut cfg = model_config(args.scale);
    cfg.memory_size = table1_memory(args.scale);
    let mut rows = Vec::new();

    let datasets: [(&str, cerl_data::SemiSyntheticConfig); 2] = [
        ("News", news_config(args.scale)),
        ("BlogCatalog", blogcatalog_config(args.scale)),
    ];

    for (name, data_cfg) in datasets {
        let gen = SemiSyntheticGenerator::new(data_cfg, args.seed);
        for shift in cerl_data::DomainShift::all() {
            eprintln!("[table1] {name} / {} shift …", shift.label());
            let streams: Vec<DomainStream> = (0..args.reps)
                .map(|r| DomainStream::semisynthetic(&gen, shift, r as u64, args.seed))
                .collect();
            let outcomes =
                run_two_domain_comparison(&EstimatorSpec::main_lineup(), &streams, &cfg, args.seed);
            rows.extend(rows_from_outcomes(name, shift.label(), &outcomes));
        }
    }
    Table1Result {
        args: args.clone(),
        memory: cfg.memory_size,
        rows,
    }
}

/// Convert raw outcomes into table rows with significance vs CERL.
pub fn rows_from_outcomes(
    dataset: &str,
    shift: &str,
    outcomes: &[TwoDomainOutcome],
) -> Vec<Table1Row> {
    let cerl = outcomes
        .iter()
        .find(|o| o.strategy == "CERL")
        .expect("lineup must include CERL");
    outcomes
        .iter()
        .map(|o| Table1Row {
            dataset: dataset.to_string(),
            shift: shift.to_string(),
            strategy: o.strategy.clone(),
            previous: summarize_vs_reference(&o.prev, &cerl.prev),
            new: summarize_vs_reference(&o.new, &cerl.new),
        })
        .collect()
}

/// Print in the paper's layout and dump JSON.
pub fn print(result: &Table1Result) {
    println!(
        "\nTable I — two sequential domains, M = {} ({} reps, seed {})",
        result.memory, result.args.reps, result.args.seed
    );
    let headers = vec![
        "dataset",
        "shift",
        "strategy",
        "prev √PEHE",
        "prev εATE",
        "new √PEHE",
        "new εATE",
    ];
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.shift.clone(),
                r.strategy.clone(),
                fmt_metric(r.previous.sqrt_pehe, r.previous.pehe_worse),
                fmt_metric(r.previous.ate_error, r.previous.ate_worse),
                fmt_metric(r.new.sqrt_pehe, r.new.pehe_worse),
                fmt_metric(r.new.ate_error, r.new.ate_worse),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    match write_json("table1", result) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_core::metrics::EffectMetrics;

    #[test]
    fn rows_carry_significance_markers() {
        let cerl = TwoDomainOutcome {
            strategy: "CERL".into(),
            prev: vec![
                EffectMetrics {
                    sqrt_pehe: 1.0,
                    ate_error: 0.2,
                },
                EffectMetrics {
                    sqrt_pehe: 1.05,
                    ate_error: 0.21,
                },
                EffectMetrics {
                    sqrt_pehe: 0.95,
                    ate_error: 0.19,
                },
            ],
            new: vec![
                EffectMetrics {
                    sqrt_pehe: 1.0,
                    ate_error: 0.2,
                },
                EffectMetrics {
                    sqrt_pehe: 1.0,
                    ate_error: 0.2,
                },
                EffectMetrics {
                    sqrt_pehe: 1.0,
                    ate_error: 0.2,
                },
            ],
        };
        let bad_new = TwoDomainOutcome {
            strategy: "CFR-A".into(),
            prev: cerl.prev.clone(),
            new: cerl
                .new
                .iter()
                .map(|m| EffectMetrics {
                    sqrt_pehe: m.sqrt_pehe + 2.0,
                    ate_error: m.ate_error + 1.0,
                })
                .collect(),
        };
        let rows = rows_from_outcomes("News", "substantial", &[bad_new, cerl]);
        let a = &rows[0];
        assert!(a.new.pehe_worse, "CFR-A new-data PEHE should be flagged");
        assert!(
            !a.previous.pehe_worse,
            "CFR-A previous-data PEHE should not be flagged"
        );
        let c = &rows[1];
        assert!(!c.new.pehe_worse && !c.previous.pehe_worse);
    }

    #[test]
    #[should_panic(expected = "must include CERL")]
    fn rows_require_cerl_reference() {
        let only_a = TwoDomainOutcome {
            strategy: "CFR-A".into(),
            prev: vec![EffectMetrics {
                sqrt_pehe: 1.0,
                ate_error: 0.1,
            }],
            new: vec![EffectMetrics {
                sqrt_pehe: 1.0,
                ate_error: 0.1,
            }],
        };
        let _ = rows_from_outcomes("News", "none", &[only_a]);
    }
}
