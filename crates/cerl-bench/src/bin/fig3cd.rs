//! Regenerates Figure 3 (c,d) of the paper (α / δ sensitivity sweeps).

fn main() {
    let args = cerl_bench::RunArgs::parse(std::env::args().skip(1));
    let result = cerl_bench::fig3::run_cd(&args);
    cerl_bench::fig3::print_cd(&result);
}
