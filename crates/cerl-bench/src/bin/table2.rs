//! Regenerates Table II of the paper. See `cerl-bench` crate docs for flags.

fn main() {
    let args = cerl_bench::RunArgs::parse(std::env::args().skip(1));
    let result = cerl_bench::table2::run(&args);
    cerl_bench::table2::print(&result);
}
