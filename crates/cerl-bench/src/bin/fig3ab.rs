//! Regenerates Figure 3 (a,b) of the paper (5 sequential domains, memory
//! budgets vs the all-data ideal). `--ablate-cosine` adds the in-text
//! cosine-normalization ablation series.

fn main() {
    let args = cerl_bench::RunArgs::parse(std::env::args().skip(1));
    let result = cerl_bench::fig3::run_ab(&args);
    cerl_bench::fig3::print_ab(&result);
}
