//! Calibration diagnostics: is the synthetic benchmark learnable at the
//! chosen scale, and how large is the domain shift?
//!
//! Prints, for a single-domain CFR fit:
//! * τ (true ITE) mean/std — available heterogeneity signal;
//! * √PEHE of the model vs the constant-ATE predictor (must be clearly
//!   lower for the benchmark to discriminate strategies);
//! * factual RMSE vs the outcome noise floor;
//! * cross-domain degradation: same model evaluated on a shifted domain.

use cerl_bench::scale::{model_config, synthetic_config, RunArgs};
use cerl_bench::trajectory::{self, BandConfig, ProbeRecord, TrajectoryReport};
use cerl_core::metrics::EffectMetrics;
use cerl_core::CfrModel;
use cerl_data::{DomainStream, SyntheticGenerator};
use cerl_math::stats::{mean, std_dev};

/// Serving-path diagnostics: engine snapshot round-trip (size, save/load
/// latency, bitwise-identical predictions) and chunked-inference
/// throughput at request sizes a service would see.
fn serving_probe(stream: &DomainStream, cfg: &cerl_core::CerlConfig, seed: u64) -> ProbeRecord {
    use cerl_core::engine::CerlEngineBuilder;
    use cerl_serve::LatencyHistogram;
    use std::time::Instant;

    let mut engine = CerlEngineBuilder::new(cfg.clone())
        .seed(seed)
        .build()
        .expect("diag: config validated by model_config");
    for d in 0..stream.len() {
        engine
            .observe(&stream.domain(d).train, &stream.domain(d).val)
            .expect("diag: synthetic domains are well-formed");
    }

    let t0 = Instant::now();
    let bytes = engine.save_bytes().expect("trained engine saves");
    let save = t0.elapsed();
    let t0 = Instant::now();
    let restored = cerl_core::engine::CerlEngine::load_bytes(&bytes).expect("own bytes load");
    let load = t0.elapsed();
    let x = &stream.domain(0).test.x;
    let identical = restored.predict_ite(x).expect("restored predicts")
        == engine.predict_ite(x).expect("engine predicts");
    println!(
        "snapshot: {} bytes, save {:.1} ms, load {:.1} ms, bitwise-identical predictions: {identical}",
        bytes.len(),
        save.as_secs_f64() * 1e3,
        load.as_secs_f64() * 1e3,
    );

    let mut best_rows_per_sec = 0.0f64;
    let hist = LatencyHistogram::new();
    for chunk_rows in [64usize, 512, 4096] {
        let t0 = Instant::now();
        let reps = 20;
        for _ in 0..reps {
            let t_req = Instant::now();
            engine
                .predict_ite_chunked(x, chunk_rows)
                .expect("chunked predict");
            if chunk_rows == 512 {
                hist.record(t_req.elapsed());
            }
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let per_row = elapsed / (reps * x.rows()) as f64;
        best_rows_per_sec = best_rows_per_sec.max((reps * x.rows()) as f64 / elapsed);
        println!(
            "chunked inference ({chunk_rows:>4}-row chunks): {:.2} µs/unit",
            per_row * 1e6
        );
    }
    let mut record = ProbeRecord::new("serving", best_rows_per_sec, hist.snapshot());
    record.passed = identical;
    record.detail = format!(
        "snapshot {} bytes; bitwise-identical restore: {identical}",
        bytes.len()
    );
    record
}

/// Concurrent-serving throughput probe: rows/sec of a 10k-row ITE request
/// served by [`cerl_core::ServingEngine::predict_ite_parallel`] at 1/2/4/8
/// reader threads, plus a hot-swap-under-load sanity pass.
fn concurrent_probe(stream: &DomainStream, cfg: &cerl_core::CerlConfig, seed: u64) -> bool {
    use cerl_core::engine::CerlEngineBuilder;
    use cerl_core::ServingEngine;
    use std::time::Instant;

    let mut engine = CerlEngineBuilder::new(cfg.clone())
        .seed(seed)
        .build()
        .expect("diag: config validated by model_config");
    engine
        .observe(&stream.domain(0).train, &stream.domain(0).val)
        .expect("diag: synthetic domains are well-formed");
    let serving = ServingEngine::new(engine);

    // 10k-row request matrix: tile the test split's rows.
    let base = &stream.domain(0).test.x;
    let rows = 10_000;
    let idx: Vec<usize> = (0..rows).map(|i| i % base.rows()).collect();
    let request = base.select_rows(&idx);

    // BENCH note: `available_parallelism` is a syscall; the GEMM kernels
    // (and this probe) read it through a process-wide OnceLock so the
    // hottest path never re-queries it per multiply.
    println!(
        "machine: {} matmul worker thread(s) (available_parallelism, cached in OnceLock)",
        cerl_math::matmul::worker_threads()
    );

    let reps = 5;
    let mut baseline = 0.0_f64;
    for threads in [1usize, 2, 4, 8] {
        // Warm-up keeps allocator and cache effects out of the timing.
        let expect = serving
            .predict_ite_parallel(&request, threads)
            .expect("well-formed request");
        assert_eq!(expect.len(), rows);
        let t0 = Instant::now();
        for _ in 0..reps {
            serving
                .predict_ite_parallel(&request, threads)
                .expect("well-formed request");
        }
        let rows_per_sec = (reps * rows) as f64 / t0.elapsed().as_secs_f64();
        if threads == 1 {
            baseline = rows_per_sec;
        }
        println!(
            "predict_ite_parallel: {threads} reader thread(s): {:>10.0} rows/sec (x{:.2} vs 1 thread)",
            rows_per_sec,
            rows_per_sec / baseline.max(1.0)
        );
    }

    // Hot-swap under load: readers hammer the 10k-row request while a new
    // domain is observed and swapped in; zero reader errors expected.
    let mut swap_ok = false;
    let serving = std::sync::Arc::new(serving);
    let stop = std::sync::atomic::AtomicBool::new(false);
    let reader_errors = std::sync::atomic::AtomicUsize::new(0);
    let served = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    match serving.predict_ite(&request) {
                        Ok(_) => {
                            served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(_) => {
                            reader_errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        let swap = serving
            .observe_and_swap(&stream.domain(1).train, &stream.domain(1).val)
            .map(|(_, v)| v);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        match swap {
            Ok(v) => {
                swap_ok = true;
                println!("hot swap under load: published version {v}");
            }
            Err(e) => println!("hot swap under load FAILED: {e}"),
        }
    });
    let stats = serving.stats();
    let error_count = reader_errors.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "under swap: {} requests answered, {error_count} reader errors (want 0); totals: {} served / {} rows / {} swaps / {} rejected",
        served.load(std::sync::atomic::Ordering::Relaxed),
        stats.requests_served,
        stats.rows_predicted,
        stats.swaps,
        stats.rejected_requests,
    );
    swap_ok && error_count == 0
}

/// Micro-batching throughput probe: 64 concurrent clients each issuing
/// 4-row ITE requests, served unbatched (straight at the
/// [`cerl_core::ServingEngine`]) vs through a
/// [`cerl_serve::BatchScheduler`] that coalesces them into one forward
/// pass — rows/sec and p95 end-to-end latency for both paths.
fn batched_probe(stream: &DomainStream, cfg: &cerl_core::CerlConfig, seed: u64) -> ProbeRecord {
    use cerl_core::engine::CerlEngineBuilder;
    use cerl_core::ServingEngine;
    use cerl_serve::{BatchConfig, BatchScheduler, LatencyHistogram};
    use std::sync::Arc;
    use std::time::Instant;

    let mut engine = CerlEngineBuilder::new(cfg.clone())
        .seed(seed)
        .build()
        .expect("diag: config validated by model_config");
    engine
        .observe(&stream.domain(0).train, &stream.domain(0).val)
        .expect("diag: synthetic domains are well-formed");
    let serving = Arc::new(ServingEngine::new(engine));

    let clients = 64usize;
    let request_rows = 4usize;
    let rounds = 60usize;
    let base = &stream.domain(0).test.x;
    let requests: Vec<cerl_math::Matrix> = (0..clients)
        .map(|c| {
            let idx: Vec<usize> = (0..request_rows)
                .map(|r| (c * request_rows + r) % base.rows())
                .collect();
            base.select_rows(&idx)
        })
        .collect();

    println!(
        "batched-vs-unbatched: {clients} concurrent clients x {request_rows}-row requests x {rounds} rounds"
    );

    // Each client round-trips its own request `rounds` times; the
    // histogram sees every per-request end-to-end latency.
    let run = |label: &str,
               predict: &(dyn Fn(&cerl_math::Matrix) -> Vec<f64> + Sync)|
     -> (f64, cerl_serve::LatencySnapshot) {
        // Warm-up wave outside the timing: thread pools, allocator, and
        // (for the batched path) the collector are all hot before t0.
        std::thread::scope(|scope| {
            for request in &requests {
                scope.spawn(|| {
                    predict(request);
                });
            }
        });
        let hist = LatencyHistogram::new();
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for request in &requests {
                scope.spawn(|| {
                    for _ in 0..rounds {
                        let t_req = Instant::now();
                        let ite = predict(request);
                        hist.record(t_req.elapsed());
                        assert_eq!(ite.len(), request_rows);
                    }
                });
            }
        });
        let rows_per_sec = (clients * rounds * request_rows) as f64 / t0.elapsed().as_secs_f64();
        let s = hist.snapshot();
        println!(
            "  {label:<9}: {rows_per_sec:>10.0} rows/sec | request latency p50 {:.2} ms p95 {:.2} ms p99 {:.2} ms",
            s.p50.as_secs_f64() * 1e3,
            s.p95.as_secs_f64() * 1e3,
            s.p99.as_secs_f64() * 1e3,
        );
        (rows_per_sec, s)
    };

    let (unbatched, _) = run("unbatched", &|x| {
        serving.predict_ite(x).expect("well-formed request")
    });

    // Tune the row bound to the workload's natural batch (64 clients x 4
    // rows): the batch closes the moment the whole wave has coalesced
    // instead of idling out the max_wait budget waiting for rows that
    // are not coming. max_wait only pays when a round has stragglers.
    let scheduler = BatchScheduler::new(
        Arc::clone(&serving),
        BatchConfig {
            max_batch_rows: clients * request_rows,
            max_wait: std::time::Duration::from_micros(300),
            ..BatchConfig::default()
        },
    );
    let (batched, batched_latency) = run("batched", &|x| {
        scheduler.predict_ite(x).expect("well-formed request")
    });
    // The batching contract: a coalesced request's slice is bitwise what
    // the unbatched path answers against the same engine version.
    let bitwise_ok = requests.iter().all(|request| {
        let via_batch = scheduler.predict_ite(request).expect("well-formed request");
        let direct = serving.predict_ite(request).expect("well-formed request");
        via_batch
            .iter()
            .zip(&direct)
            .all(|(a, b)| a.to_bits() == b.to_bits())
    });
    println!("  batched results bitwise-identical to unbatched: {bitwise_ok}");
    let stats = scheduler.stats();
    println!(
        "  coalescing: {} requests in {} batches (mean {:.1} requests = {:.0} rows per forward pass, max {} requests) | queue wait p95 {:.2} ms",
        stats.requests,
        stats.batches,
        stats.mean_requests_per_batch(),
        stats.mean_rows_per_batch(),
        stats.max_batch_requests,
        stats.queue_wait.p95.as_secs_f64() * 1e3,
    );
    println!(
        "  batched/unbatched throughput: x{:.2}",
        batched / unbatched.max(1.0)
    );
    println!(
        "NOTE: this container has 1 CPU: the gain here is purely amortized per-request \
overhead (one standardizer pass + GEMM setup per batch instead of per request); \
multi-core hardware adds the parallel reader fan-out of `--concurrent` on top."
    );
    let mut record = ProbeRecord::new("batched", batched, batched_latency);
    record.passed = bitwise_ok;
    record.detail = format!(
        "{clients} clients x {request_rows} rows; batched/unbatched x{:.2}; mean {:.1} requests/batch; bitwise: {bitwise_ok}",
        batched / unbatched.max(1.0),
        stats.mean_requests_per_batch(),
    );
    record
}

/// Cross-shard scatter-gather probe: a 3-shard fleet (clones of one
/// engine, so the single-engine reference is exact) serves mixed-domain
/// requests; verifies the merged output is bitwise identical to the
/// unsharded engine, compares throughput, then moves a domain between
/// shards (begin → commit) under live scatter load.
fn scatter_probe(stream: &DomainStream, cfg: &cerl_core::CerlConfig, seed: u64) -> ProbeRecord {
    use cerl_core::engine::CerlEngineBuilder;
    use cerl_core::{ServingEngine, ShardMap};
    use cerl_serve::{LatencyHistogram, ShardRouter};
    use std::time::Instant;

    let mut engine = CerlEngineBuilder::new(cfg.clone())
        .seed(seed)
        .build()
        .expect("diag: config validated by model_config");
    engine
        .observe(&stream.domain(0).train, &stream.domain(0).val)
        .expect("diag: synthetic domains are well-formed");

    // Six domains spread over three shards; every shard a clone of the
    // same engine so the unsharded reference is bitwise exact.
    let shards = 3usize;
    let domains = 6u64;
    let pairs: Vec<(u64, usize)> = (0..domains).map(|d| (d, d as usize % shards)).collect();
    let map = ShardMap::from_pairs(shards, &pairs).expect("pairs are in range");
    let router = ShardRouter::new((0..shards).map(|_| engine.clone()).collect(), map)
        .expect("fleet sizes agree");

    // Mixed request: 3k rows tiled from the test split, round-robin tags.
    let base = &stream.domain(0).test.x;
    let rows = 3_000usize;
    let idx: Vec<usize> = (0..rows).map(|i| i % base.rows()).collect();
    let request = base.select_rows(&idx);
    let tags: Vec<u64> = (0..rows).map(|i| i as u64 % domains).collect();

    let reference = engine.predict_ite(&request).expect("well-formed request");
    let scattered = router
        .predict_ite_scatter(&tags, &request)
        .expect("every tag is mapped");
    let identical = reference
        .iter()
        .zip(&scattered)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "scatter-gather: {rows} rows over {domains} domains / {shards} shards, bitwise-identical to unsharded engine: {identical}"
    );

    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        engine.predict_ite(&request).expect("well-formed request");
    }
    let unsharded = (reps * rows) as f64 / t0.elapsed().as_secs_f64();
    let hist = LatencyHistogram::new();
    let t0 = Instant::now();
    for _ in 0..reps {
        let t_req = Instant::now();
        router
            .predict_ite_scatter(&tags, &request)
            .expect("every tag is mapped");
        hist.record(t_req.elapsed());
    }
    let sharded = (reps * rows) as f64 / t0.elapsed().as_secs_f64();
    let stats = router.stats();
    println!(
        "throughput: unsharded {unsharded:>9.0} rows/sec | scatter {sharded:>9.0} rows/sec (x{:.2}) | mean fan-out {:.1} shards/request",
        sharded / unsharded.max(1.0),
        stats.mean_shards_per_scatter(),
    );
    println!(
        "NOTE: on this 1-CPU container the scatter path measures demux/merge overhead only; \
multi-core hardware runs the per-shard sub-batches concurrently."
    );

    // Rebalance under live scatter load: move domain 1 from shard 1 to
    // shard 2 with clients hammering mixed requests throughout.
    let mut commit_ok = false;
    let stop = std::sync::atomic::AtomicBool::new(false);
    let errors = std::sync::atomic::AtomicUsize::new(0);
    let served = std::sync::atomic::AtomicUsize::new(0);
    let small_tags: Vec<u64> = (0..64).map(|i| i as u64 % domains).collect();
    let small = base.select_rows(&(0..64).map(|i| i % base.rows()).collect::<Vec<_>>());
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    match router.predict_ite_scatter(&small_tags, &small) {
                        Ok(_) => {
                            served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        let staged = router.begin_rebalance(1, 2, engine.clone());
        assert!(staged.is_ok(), "staging a trained successor: {staged:?}");
        // Dual-route window: pin source and destination coherently.
        let (src, dst) = ServingEngine::pin_pair(
            router.shard(1).expect("shard 1 exists"),
            router.shard(2).expect("shard 2 exists"),
        );
        println!(
            "dual-route window open: domain 1 still on shard 1 (v{}), destination shard 2 at v{}",
            src.version(),
            dst.version()
        );
        let commit = router.commit_rebalance();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        match commit {
            Ok(v) => {
                commit_ok = true;
                println!(
                    "rebalance committed under load: domain 1 now on shard {}, destination at v{v}",
                    router.route(1).expect("domain 1 is mapped"),
                );
            }
            Err(e) => println!("rebalance FAILED: {e}"),
        }
    });
    let error_count = errors.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "under rebalance: {} scatter requests answered, {error_count} errors (want 0); shard versions {:?}",
        served.load(std::sync::atomic::Ordering::Relaxed),
        router.shard_versions(),
    );
    let mut record = ProbeRecord::new("scatter", sharded, hist.snapshot());
    record.passed = identical && commit_ok && error_count == 0;
    record.detail = format!(
        "{rows} rows over {domains} domains / {shards} shards; bitwise: {identical}; \
         rebalance-under-load errors: {error_count}"
    );
    record
}

/// Replica-era probe: the hot domain of a skewed workload is
/// read-scaled across all three shards, every route policy is
/// bitwise-checked against the unsharded reference, per-replica
/// rows/sec shows the policy spreading the hot rows, and a
/// drain→remove→add replica lifecycle runs under live scatter load
/// with an error counter as the gate.
fn replicas_probe(stream: &DomainStream, cfg: &cerl_core::CerlConfig, seed: u64) -> ProbeRecord {
    use cerl_core::engine::CerlEngineBuilder;
    use cerl_core::ShardMap;
    use cerl_serve::{
        LatencyHistogram, LeastLoaded, RoundRobin, RoutePolicy, ShardRouter, VersionPinned,
    };
    use std::sync::Arc;
    use std::time::Instant;

    let mut engine = CerlEngineBuilder::new(cfg.clone())
        .seed(seed)
        .build()
        .expect("diag: config validated by model_config");
    for d in 0..stream.len() {
        engine
            .observe(&stream.domain(d).train, &stream.domain(d).val)
            .expect("diag: synthetic domains are well-formed");
    }

    // Hot domain 0 on every shard, cold domain 1 at home on shard 1;
    // every shard a clone of the same engine — exactly the replica
    // contract (a replica restores another replica's snapshot), so
    // whichever replica a policy picks, the unsharded reference is
    // bitwise exact.
    let shards = 3usize;
    let map = ShardMap::from_replicas(shards, &[(0, vec![0, 1, 2]), (1, vec![1])])
        .expect("replica sets are in range");
    let router = ShardRouter::new((0..shards).map(|_| engine.clone()).collect(), map)
        .expect("fleet sizes agree");

    // Skewed request: 3k rows, three quarters tagged with the hot domain.
    let base = &stream.domain(0).test.x;
    let rows = 3_000usize;
    let idx: Vec<usize> = (0..rows).map(|i| i % base.rows()).collect();
    let request = base.select_rows(&idx);
    let tags: Vec<u64> = (0..rows).map(|i| u64::from(i % 4 == 3)).collect();
    let reference = engine.predict_ite(&request).expect("well-formed request");

    // Placement is the only thing a policy may change: all three must
    // reproduce the reference bit for bit on the replicated topology.
    let policies: Vec<(&str, Arc<dyn RoutePolicy>)> = vec![
        ("least-loaded", Arc::new(LeastLoaded)),
        ("round-robin", Arc::new(RoundRobin::new())),
        ("version-pinned", Arc::new(VersionPinned::new(1))),
    ];
    let mut all_identical = true;
    for (name, policy) in &policies {
        router.set_route_policy(Arc::clone(policy));
        let scattered = router
            .predict_ite_scatter(&tags, &request)
            .expect("every tag is mapped");
        let identical = reference
            .iter()
            .zip(&scattered)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        all_identical &= identical;
        println!("replicas [{name:>14}]: bitwise-identical to unsharded engine: {identical}");
    }

    // Throughput and per-replica attribution: round-robin rotates the
    // hot sub-batch across the replica-set, so the skewed load shows up
    // as near-even per-shard rows/sec instead of one scorching shard.
    router.set_route_policy(Arc::new(RoundRobin::new()));
    let before = router.shard_loads();
    let hist = LatencyHistogram::new();
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        let t_req = Instant::now();
        router
            .predict_ite_scatter(&tags, &request)
            .expect("every tag is mapped");
        hist.record(t_req.elapsed());
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let throughput = (reps * rows) as f64 / elapsed;
    for (b, a) in before.iter().zip(router.shard_loads()) {
        println!(
            "replica shard {}: {:>9.0} rows/sec over the timed window",
            a.shard,
            (a.rows - b.rows) as f64 / elapsed,
        );
    }
    println!(
        "throughput: replicated scatter {throughput:>9.0} rows/sec | mean fan-out {:.1} shards/request",
        router.stats().mean_shards_per_scatter(),
    );
    println!(
        "NOTE: on this 1-CPU container replication measures demux/merge overhead only; \
multi-core hardware runs the per-replica sub-batches concurrently."
    );

    // Replica lifecycle under live load: scale the hot domain in
    // (drain + remove shard 2) and back out (staged add, one-flip
    // commit) with clients hammering skewed requests throughout.
    let mut commit_ok = false;
    let stop = std::sync::atomic::AtomicBool::new(false);
    let errors = std::sync::atomic::AtomicUsize::new(0);
    let served = std::sync::atomic::AtomicUsize::new(0);
    let small_tags: Vec<u64> = (0..64).map(|i| u64::from(i % 4 == 3)).collect();
    let small = base.select_rows(&(0..64).map(|i| i % base.rows()).collect::<Vec<_>>());
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    match router.predict_ite_scatter(&small_tags, &small) {
                        Ok(_) => {
                            served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // On one CPU the clients only run while this thread yields;
        // settle real traffic around each verb so the lifecycle truly
        // happens under load.
        let settle = |floor: usize| {
            while served.load(std::sync::atomic::Ordering::Relaxed) < floor {
                std::thread::yield_now();
            }
        };
        settle(2);
        let drained = router.drain_replica(0, 2);
        assert!(drained.is_ok(), "drain a redundant replica: {drained:?}");
        let removed = router.remove_replica(0, 2);
        assert!(removed.is_ok(), "finalize the drain: {removed:?}");
        settle(4);
        let staged = router.begin_add_replica(0, 2, engine.clone());
        assert!(staged.is_ok(), "stage a trained replica: {staged:?}");
        match router.commit_rebalance() {
            Ok(v) => {
                commit_ok = true;
                println!("replica re-added under load: shard 2 republished at v{v}");
            }
            Err(e) => println!("replica add FAILED: {e}"),
        }
        settle(6);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let error_count = errors.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "under replica lifecycle: {} scatter requests answered, {error_count} errors (want 0); \
domain 0 replica-set: {}",
        served.load(std::sync::atomic::Ordering::Relaxed),
        router.replicas(0).expect("domain 0 is mapped"),
    );
    let mut record = ProbeRecord::new("replicas", throughput, hist.snapshot());
    record.passed = all_identical && commit_ok && error_count == 0;
    record.detail = format!(
        "{rows} skewed rows (3:1 hot domain 0) over {shards} replicas; bitwise under every \
         policy: {all_identical}; lifecycle-under-load errors: {error_count}"
    );
    record
}

/// Network front-end probe: a loopback [`cerl_net::NetServer`] reactor
/// fronting a [`cerl_serve::BatchScheduler`], driven by 64 concurrent
/// client connections (8 driver threads x 8 sockets) round-tripping
/// small ITE requests over the wire protocol. Measures end-to-end
/// rows/sec and per-request p50/p95/p99 (socket, frame codec, epoll,
/// batching, and inference together) and bitwise-checks every response
/// against the in-process engine; any serve fault or payload mismatch
/// fails the probe.
fn net_probe(stream: &DomainStream, cfg: &cerl_core::CerlConfig, seed: u64) -> ProbeRecord {
    use cerl_core::engine::CerlEngineBuilder;
    use cerl_core::ServingEngine;
    use cerl_net::{NetBackend, NetClient, NetServer, NetServerConfig};
    use cerl_obs::TraceRing;
    use cerl_serve::{BatchConfig, BatchScheduler, LatencyHistogram};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let mut engine = CerlEngineBuilder::new(cfg.clone())
        .seed(seed)
        .build()
        .expect("diag: config validated by model_config");
    engine
        .observe(&stream.domain(0).train, &stream.domain(0).val)
        .expect("diag: synthetic domains are well-formed");
    let serving = Arc::new(ServingEngine::new(engine));
    let scheduler = Arc::new(BatchScheduler::new(
        Arc::clone(&serving),
        BatchConfig {
            max_wait: Duration::from_micros(300),
            queue_capacity: 8192,
            ..BatchConfig::default()
        },
    ));
    // The acceptance bar for the tracing hot path: 1-in-8 sampling must
    // cost nothing measurable against the untraced BENCH_7 baseline.
    let ring = TraceRing::new(1024, 8);
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::Scheduler(scheduler),
        NetServerConfig {
            trace: Some(Arc::clone(&ring)),
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let threads = 8usize;
    let conns_per_thread = 8usize;
    let rounds = 30usize;
    let request_rows = 4usize;
    let base = &stream.domain(0).test.x;
    let request = base.slice_rows(0, request_rows);
    let reference = serving.predict_ite(&request).expect("well-formed request");
    println!(
        "net: loopback reactor on {addr}, {} connections x {rounds} rounds x {request_rows}-row requests",
        threads * conns_per_thread
    );

    let hist = LatencyHistogram::new();
    let bitwise_ok = AtomicBool::new(true);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (hist, bitwise_ok, reference, request) = (&hist, &bitwise_ok, &reference, &request);
            scope.spawn(move || {
                let mut clients: Vec<NetClient> = (0..conns_per_thread)
                    .map(|_| NetClient::connect(addr).expect("loopback connect"))
                    .collect();
                for _ in 0..rounds {
                    for client in &mut clients {
                        let t_req = Instant::now();
                        let ite = client
                            .predict(&vec![0; request.rows()], request, None)
                            .expect("healthy request over loopback");
                        hist.record(t_req.elapsed());
                        if ite
                            .iter()
                            .zip(reference)
                            .any(|(a, b)| a.to_bits() != b.to_bits())
                        {
                            bitwise_ok.store(false, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let expected = (threads * conns_per_thread * rounds) as u64;
    let rows_per_sec = (expected * request_rows as u64) as f64 / elapsed.max(1e-9);
    let snapshot = hist.snapshot();
    let snap = server.stats();
    let bitwise = bitwise_ok.load(Ordering::Relaxed);
    let clean = snap.responses_ok == expected
        && snap.rejected_serve == 0
        && snap.rejected_client == 0
        && snap.deadline_shed == 0;
    println!(
        "net: {rows_per_sec:>9.0} rows/sec end-to-end | request latency p50 {:.2} ms p95 {:.2} ms p99 {:.2} ms",
        snapshot.p50.as_secs_f64() * 1e3,
        snapshot.p95.as_secs_f64() * 1e3,
        snapshot.p99.as_secs_f64() * 1e3,
    );
    println!(
        "net: {} accepted, {} ok responses ({} expected), {} serve faults (want 0), bitwise-identical: {bitwise}",
        snap.accepted, snap.responses_ok, expected, snap.rejected_serve,
    );
    println!(
        "NOTE: on this 1-CPU container the reactor, the batch collector, and the clients \
time-share one core, so the latency tail measures the machine; the rows/sec and the \
zero-fault/bitwise checks are the signal."
    );
    server.shutdown().expect("reactor joins cleanly");

    let trace_stats = ring.stats();
    let spans = ring.dump(1024);
    let monotone = spans.iter().all(|s| s.is_monotone());
    let trace_ok = monotone && trace_stats.sampled > 0 && trace_stats.dropped == 0;
    println!(
        "net: trace 1-in-8: {} seen, {} sampled, {} completed, {} dropped, all monotone: {monotone}",
        trace_stats.seen, trace_stats.sampled, trace_stats.completed, trace_stats.dropped,
    );

    let mut record = ProbeRecord::new("net", rows_per_sec, snapshot);
    record.passed = bitwise && clean && trace_ok;
    record.detail = format!(
        "{} conns x {rounds} rounds over loopback; ok {}/{}; serve faults {}; bitwise: {bitwise}; \
         trace 1-in-8 sampled {} dropped {} monotone {monotone}",
        threads * conns_per_thread,
        snap.responses_ok,
        expected,
        snap.rejected_serve,
        trace_stats.sampled,
        trace_stats.dropped,
    );
    record
}

/// Orchestrated-rebalance probe: a 4-shard fleet (clones of one engine,
/// so the single-engine reference is bitwise exact) starts with eight
/// domains packed onto two shards; a [`cerl_serve::RebalanceOrchestrator`]
/// executes the plan to a spread-out target — one canary-watched
/// begin → probe → commit move at a time — while client threads hammer
/// mixed-domain scatter requests and bitwise-check every response.
/// Emits one machine-readable JSON line with the probe's outcome.
fn orchestrate_probe(stream: &DomainStream, cfg: &cerl_core::CerlConfig, seed: u64) -> ProbeRecord {
    use cerl_core::engine::CerlEngineBuilder;
    use cerl_core::ShardMap;
    use cerl_serve::{
        CanaryConfig, LatencyHistogram, OrchestratorConfig, RebalanceOrchestrator, ShardRouter,
    };
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let mut engine = CerlEngineBuilder::new(cfg.clone())
        .seed(seed)
        .build()
        .expect("diag: config validated by model_config");
    engine
        .observe(&stream.domain(0).train, &stream.domain(0).val)
        .expect("diag: synthetic domains are well-formed");

    // Eight domains packed onto shards 0 and 1 of a 4-shard fleet; the
    // target spreads them round-robin across all four.
    let shards = 4usize;
    let domains = 8u64;
    let packed: Vec<(u64, usize)> = (0..domains).map(|d| (d, (d % 2) as usize)).collect();
    let spread: Vec<(u64, usize)> = (0..domains).map(|d| (d, d as usize % shards)).collect();
    let current = ShardMap::from_pairs(shards, &packed).expect("pairs are in range");
    let target = ShardMap::from_pairs(shards, &spread).expect("pairs are in range");
    let router = Arc::new(
        ShardRouter::new((0..shards).map(|_| engine.clone()).collect(), current)
            .expect("fleet sizes agree"),
    );
    let orchestrator = RebalanceOrchestrator::new(
        Arc::clone(&router),
        OrchestratorConfig {
            canary: CanaryConfig {
                window_requests: 8,
                max_wait: Duration::from_secs(10),
                max_error_rate: 0.5,
                // Latency on a loaded 1-CPU container is too noisy to
                // gate a smoke probe on; the stress suite covers it.
                max_p95_ratio: 1e6,
            },
            max_staged: 2,
        },
    );
    let plan = orchestrator
        .plan(&target)
        .expect("target only moves domains");
    println!(
        "orchestrate: {} move(s) planned from packed {{0,1}} to round-robin over {shards} shards",
        plan.len()
    );

    let base = &stream.domain(0).test.x;
    let request_rows = 64usize;
    let request = base.select_rows(
        &(0..request_rows)
            .map(|i| i % base.rows())
            .collect::<Vec<_>>(),
    );
    let tags: Vec<u64> = (0..request_rows).map(|i| i as u64 % domains).collect();
    let reference = engine.predict_ite(&request).expect("well-formed request");

    let stop = AtomicBool::new(false);
    let errors = AtomicUsize::new(0);
    let served = AtomicUsize::new(0);
    let torn = AtomicUsize::new(0);
    let hist = LatencyHistogram::new();
    let t0 = Instant::now();
    let mut outcome = None;
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let router = Arc::clone(&router);
            let (stop, errors, served, torn) = (&stop, &errors, &served, &torn);
            let (reference, tags, request, hist) = (&reference, &tags, &request, &hist);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let t_req = Instant::now();
                    match router.predict_ite_scatter(tags, request) {
                        Ok(ite) => {
                            hist.record(t_req.elapsed());
                            served.fetch_add(1, Ordering::Relaxed);
                            if ite
                                .iter()
                                .zip(reference)
                                .any(|(a, b)| a.to_bits() != b.to_bits())
                            {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        outcome = Some(orchestrator.execute(&plan, |_| Ok(engine.clone())));
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let outcome = outcome.expect("scope body ran");

    let error_count = errors.load(Ordering::Relaxed);
    let torn_count = torn.load(Ordering::Relaxed);
    let committed = outcome.as_ref().map_or(0, |r| r.moves.len());
    let plan_ok = match &outcome {
        Ok(report) => {
            for mv in &report.moves {
                println!(
                    "  committed: {} (destination v{}, window {} reqs / {} rejected)",
                    mv.mv, mv.destination_version, mv.window.requests, mv.window.rejected
                );
            }
            true
        }
        Err(e) => {
            println!("  plan halted: {e}");
            false
        }
    };
    let topology_ok = *router.map() == target;
    let rows_per_sec = (served.load(Ordering::Relaxed) * request_rows) as f64 / elapsed.max(1e-9);
    println!(
        "under orchestration: {} scatter requests answered ({rows_per_sec:.0} rows/sec), \
         {error_count} errors (want 0), {torn_count} torn responses (want 0); shard versions {:?}",
        served.load(Ordering::Relaxed),
        router.shard_versions(),
    );

    let mut record = ProbeRecord::new("orchestrate", rows_per_sec, hist.snapshot());
    record.passed =
        plan_ok && topology_ok && error_count == 0 && torn_count == 0 && committed == plan.len();
    record.detail = format!(
        "{}/{} moves committed; topology reached target: {topology_ok}; errors: {error_count}; \
         torn: {torn_count}",
        committed,
        plan.len()
    );
    // The machine-readable line CI-side tooling scrapes without parsing
    // the human text above.
    println!(
        "{}",
        serde_json::to_string(&record).expect("probe record serializes")
    );
    record
}

/// Dense-kernel raw-speed probe: textbook triple-loop f64 GEMM vs the
/// cache-blocked microkernel at 256³ (the smallest size the acceptance
/// bar names). Reports GFLOP/s for both and fails unless the blocked
/// kernel is at least 2x the naive one *and* every entry point —
/// naive, serial, parallel, size-dispatched — returns bitwise-identical
/// output. The naive comparison is bitwise-valid here because the whole
/// inner dimension fits one `KC = 256` block, so both kernels sum the
/// same 256 terms in ascending order from a fresh accumulator — with
/// the naive loop using the same fused-multiply-add contract as the
/// blocked kernel (one rounding per term when the target has hardware
/// FMA), so the ratio measures blocking and vectorization, not a
/// rounding shortcut.
fn matmul_probe() -> ProbeRecord {
    use cerl_math::matmul::{matmul, matmul_parallel, matmul_serial};
    use cerl_math::Matrix;
    use cerl_serve::LatencyHistogram;
    use std::time::Instant;

    let dim = 256usize;
    // Deterministic non-trivial fill: sign-mixed, no shared structure
    // between A and B, no RNG dependency.
    let a = Matrix::from_fn(dim, dim, |i, j| {
        ((i * 31 + j * 7) % 97) as f64 * 0.013 - 0.5
    });
    let b = Matrix::from_fn(dim, dim, |i, j| {
        ((i * 17 + j * 13) % 89) as f64 * 0.011 - 0.4
    });

    // Same per-term arithmetic as cerl-math's kernel helper: one fused
    // rounding when the build has hardware FMA, mul-then-add otherwise.
    #[inline(always)]
    fn fma(a: f64, b: f64, c: f64) -> f64 {
        #[cfg(target_feature = "fma")]
        {
            a.mul_add(b, c)
        }
        #[cfg(not(target_feature = "fma"))]
        {
            a * b + c
        }
    }

    let naive = |a: &Matrix, b: &Matrix| -> Matrix {
        let (m, k) = a.shape();
        let n = b.cols();
        let (asl, bsl) = (a.as_slice(), b.as_slice());
        let mut out = Matrix::zeros(m, n);
        let osl = out.as_mut_slice();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc = fma(asl[i * k + p], bsl[p * n + j], acc);
                }
                osl[i * n + j] = acc;
            }
        }
        out
    };

    let flops = (2 * dim * dim * dim) as f64;
    let reps = 5usize;
    let time = |f: &dyn Fn() -> Matrix, hist: Option<&LatencyHistogram>| -> (Matrix, f64) {
        let reference = f(); // warm-up outside the timing
        let t0 = Instant::now();
        for _ in 0..reps {
            let t_mul = Instant::now();
            f();
            if let Some(h) = hist {
                h.record(t_mul.elapsed());
            }
        }
        (
            reference,
            flops * reps as f64 / t0.elapsed().as_secs_f64() / 1e9,
        )
    };

    let hist = LatencyHistogram::new();
    let (c_naive, naive_gflops) = time(&|| naive(&a, &b), None);
    let (c_blocked, blocked_gflops) = time(&|| matmul_serial(&a, &b), Some(&hist));
    let speedup = blocked_gflops / naive_gflops.max(1e-9);

    let bits = |m: &Matrix| -> Vec<u64> { m.as_slice().iter().map(|v| v.to_bits()).collect() };
    let reference = bits(&c_blocked);
    let bitwise = bits(&c_naive) == reference
        && bits(&matmul_parallel(&a, &b)) == reference
        && bits(&matmul(&a, &b)) == reference;

    println!(
        "matmul {dim}^3 f64: naive {naive_gflops:.2} GFLOP/s | blocked {blocked_gflops:.2} GFLOP/s \
         (x{speedup:.2}, want >= 2) | naive/serial/parallel/dispatch bitwise-identical: {bitwise}"
    );

    // rows_per_sec keeps the trajectory schema: output rows of C per
    // second through the blocked serial kernel.
    let rows_per_sec = blocked_gflops * 1e9 / flops * dim as f64;
    let mut record = ProbeRecord::new("matmul", rows_per_sec, hist.snapshot());
    record.passed = bitwise && speedup >= 2.0;
    record.detail = format!(
        "{dim}^3 f64: naive {naive_gflops:.2} vs blocked {blocked_gflops:.2} GFLOP/s (x{speedup:.2}); \
         bitwise: {bitwise}"
    );
    record
}

/// Pure supervised regression of the true ITE surface τ(x): upper-bounds
/// what any causal estimator could achieve on this data.
fn supervised_probe(train: &cerl_data::CausalDataset, test: &cerl_data::CausalDataset, seed: u64) {
    use cerl_data::Standardizer;
    use cerl_math::Matrix;
    use cerl_nn::{Activation, Adam, Graph, Mlp, Optimizer, ParamStore};
    let std = Standardizer::fit(&train.x);
    let xs = std.transform(&train.x);
    let xt = std.transform(&test.x);
    let linear_probe = std::env::args().any(|a| a == "--probe-linear");
    let (tau_train, tau_test) = if linear_probe {
        // Linear target: w = 1/sqrt(d) on every coordinate.
        let d = xs.cols() as f64;
        let f = |m: &Matrix| -> Vec<f64> {
            m.iter_rows()
                .map(|r| r.iter().sum::<f64>() / d.sqrt())
                .collect()
        };
        (Matrix::col_vector(&f(&xs)), f(&xt))
    } else {
        (Matrix::col_vector(&train.true_ite()), test.true_ite())
    };

    let mut store = ParamStore::new();
    let mut rng = cerl_rand::seeds::rng_labeled(seed, "probe");
    let mlp = Mlp::new(
        &mut store,
        &mut rng,
        &[train.dim(), 64, 32, 1],
        Activation::Elu(1.0),
        Activation::Identity,
        "probe",
    );
    let params = mlp.params();
    let mut opt = Adam::new(1e-3);
    use rand::seq::SliceRandom;
    let n = xs.rows();
    for epoch in 0..200 {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        for chunk in idx.chunks(128) {
            let xb = xs.select_rows(chunk);
            let yb = tau_train.select_rows(chunk);
            let mut gr = Graph::new();
            let xin = gr.input(xb);
            let yin = gr.input(yb);
            let pred = mlp.forward(&mut gr, &store, xin);
            let loss = cerl_nn::compose::mse(&mut gr, pred, yin);
            let grads = gr.backward(loss);
            opt.step(&mut store, &grads, &params);
        }
        if epoch % 50 == 49 {
            let mut gr = Graph::new();
            let xin = gr.input(xt.clone());
            let pred = mlp.forward(&mut gr, &store, xin);
            let pv = gr.value(pred).col(0);
            let mse: f64 = pv
                .iter()
                .zip(&tau_test)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / pv.len() as f64;
            let var = {
                let m = mean(&tau_test);
                tau_test.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / tau_test.len() as f64
            };
            println!(
                "supervised epoch {}: test MSE={:.4} var(tau)={:.4} R2={:.3}",
                epoch + 1,
                mse,
                var,
                1.0 - mse / var
            );
        }
    }
}

/// Sweep CERL loss-term weights on 2-domain streams (3 replications);
/// prints mean prev/new sqrt-PEHE per configuration with CFR-B reference.
fn cerl_term_sweep(_stream: &DomainStream, base: &cerl_core::CerlConfig, seed: u64) {
    use cerl_bench::scale::{synthetic_config, Scale};
    use cerl_core::strategies::{CfrB, ContinualEstimator};
    use cerl_core::Cerl;
    use cerl_data::SyntheticGenerator;

    let gen = SyntheticGenerator::new(synthetic_config(Scale::Quick), seed);
    let streams: Vec<DomainStream> = (0..3)
        .map(|r| DomainStream::synthetic(&gen, 2, r, seed))
        .collect();
    let d_in = streams[0].domain(0).train.dim();

    let run_avg = |mk: &dyn Fn(u64) -> Box<dyn ContinualEstimator>| -> (f64, f64) {
        let (mut p, mut n) = (0.0, 0.0);
        for (r, stream) in streams.iter().enumerate() {
            let mut est = mk(cerl_rand::seeds::derive(seed, r as u64));
            for d in 0..2 {
                est.observe(&stream.domain(d).train, &stream.domain(d).val);
            }
            p += est.evaluate(&stream.domain(0).test).sqrt_pehe;
            n += est.evaluate(&stream.domain(1).test).sqrt_pehe;
        }
        (p / 3.0, n / 3.0)
    };

    let bcfg = base.clone();
    let (bp, bn) = run_avg(&|sd| Box::new(CfrB::new(d_in, bcfg.clone(), sd)));
    println!("CFR-B reference     : prev {bp:.3} new {bn:.3}");

    #[allow(clippy::type_complexity)]
    let variants: Vec<(&str, Box<dyn Fn(&mut cerl_core::CerlConfig)>)> = vec![
        ("full", Box::new(|_c: &mut cerl_core::CerlConfig| {})),
        ("beta=10", Box::new(|c| c.beta = 10.0)),
        ("beta=25", Box::new(|c| c.beta = 25.0)),
        ("lr/2", Box::new(|c| c.train.learning_rate *= 0.5)),
        (
            "beta=10 lr/2",
            Box::new(|c| {
                c.beta = 10.0;
                c.train.learning_rate *= 0.5;
            }),
        ),
        (
            "beta=10 delta=10",
            Box::new(|c| {
                c.beta = 10.0;
                c.delta = 10.0;
            }),
        ),
        (
            "no-mem beta=10",
            Box::new(|c| {
                c.ablation.feature_transform = false;
                c.beta = 10.0;
            }),
        ),
        ("alpha=0", Box::new(|c| c.alpha = 0.0)),
        (
            "alpha=0 beta=10",
            Box::new(|c| {
                c.alpha = 0.0;
                c.beta = 10.0;
            }),
        ),
        (
            "alpha=0 lr/2",
            Box::new(|c| {
                c.alpha = 0.0;
                c.train.learning_rate *= 0.5;
            }),
        ),
        (
            "alpha=.01 lr/2",
            Box::new(|c| {
                c.alpha = 0.01;
                c.train.learning_rate *= 0.5;
            }),
        ),
        ("lr/4", Box::new(|c| c.train.learning_rate *= 0.25)),
        (
            "lr/2 epochs*2",
            Box::new(|c| {
                c.train.learning_rate *= 0.5;
                c.train.epochs *= 2;
                c.train.patience *= 2;
            }),
        ),
    ];
    for (name, tweak) in variants {
        let mut cfg = base.clone();
        tweak(&mut cfg);
        let (p, n) = run_avg(&|sd| {
            let c = cfg.clone();
            Box::new(Cerl::new(d_in, c, sd)) as Box<dyn ContinualEstimator>
        });
        println!("CERL {name:<15}: prev {p:.3} new {n:.3}");
    }
}

/// Exit non-zero when any probe's correctness check missed, naming it —
/// a bitwise mismatch or request failure in a bench lane is a bug, not a
/// slow run.
fn exit_on_failure(records: &[ProbeRecord]) {
    let failed: Vec<&str> = records
        .iter()
        .filter(|r| !r.passed)
        .map(|r| r.probe.as_str())
        .collect();
    if !failed.is_empty() {
        eprintln!("diag: FAILED probe(s): {}", failed.join(", "));
        std::process::exit(1);
    }
}

/// `--diff-trajectory NEW OLD [--band PCT] [--p95-band PCT]`: the
/// tolerance-banded regression check between two trajectory artifacts.
/// Exits non-zero when any probe regressed beyond its band; CI runs it
/// soft-fail so the log line, not a red build, is the signal.
fn diff_trajectory(args: &RunArgs, pos: usize) -> ! {
    let new_path = args
        .extra
        .get(pos + 1)
        .expect("--diff-trajectory needs NEW and OLD artifact paths");
    let old_path = args
        .extra
        .get(pos + 2)
        .expect("--diff-trajectory needs NEW and OLD artifact paths");
    let mut band = BandConfig::default();
    if let Some(b) = args.extra.iter().position(|f| f == "--band") {
        band.max_rows_per_sec_drop_pct = args.extra[b + 1]
            .parse()
            .expect("--band needs a percentage");
    }
    if let Some(b) = args.extra.iter().position(|f| f == "--p95-band") {
        band.max_p95_rise_pct = args.extra[b + 1]
            .parse()
            .expect("--p95-band needs a percentage");
    }
    let new = trajectory::load_report(std::path::Path::new(new_path))
        .unwrap_or_else(|e| panic!("diag: {e}"));
    let old = trajectory::load_report(std::path::Path::new(old_path))
        .unwrap_or_else(|e| panic!("diag: {e}"));
    let diff = trajectory::diff_reports(&new, &old, band);
    print!("{}", diff.render());
    if diff.ok() {
        println!("trajectory diff: within bands");
        std::process::exit(0);
    }
    eprintln!("diag: trajectory regression beyond the tolerance band");
    std::process::exit(1);
}

fn main() {
    let args = RunArgs::parse(std::env::args().skip(1));
    if let Some(pos) = args.extra.iter().position(|f| f == "--diff-trajectory") {
        diff_trajectory(&args, pos);
    }
    // Raw-speed lane: pure kernel arithmetic, no synthetic data needed.
    if args.has_flag("--matmul") {
        exit_on_failure(&[matmul_probe()]);
        return;
    }
    let mut cfg = model_config(args.scale);
    // Ad-hoc calibration switches.
    if args.has_flag("--no-cosine") {
        cfg.ablation.cosine_norm = false;
    }
    if args.has_flag("--alpha0") {
        cfg.alpha = 0.0;
    }
    if args.has_flag("--lambda0") {
        cfg.lambda = 0.0;
    }
    if args.has_flag("--relu") {
        cfg.net.activation = cerl_core::ActivationKind::Relu;
    }
    if args.has_flag("--wide") {
        cfg.net.repr_hidden = vec![128, 64];
        cfg.net.repr_dim = 64;
        cfg.net.head_hidden = vec![64, 32];
    }
    if args.has_flag("--long") {
        cfg.train.epochs = 300;
        cfg.train.patience = 40;
    }
    if args.has_flag("--lr-low") {
        cfg.train.learning_rate = 5e-4;
    }
    let mut data_cfg = synthetic_config(args.scale);
    if let Some(pos) = args.extra.iter().position(|f| f == "--units") {
        data_cfg.n_units = args.extra[pos + 1]
            .parse()
            .expect("--units needs an integer");
    }
    if args.has_flag("--noise0") {
        data_cfg.noise_sd = 0.0;
    }
    println!("n_units={}", data_cfg.n_units);
    let gen = SyntheticGenerator::new(data_cfg, args.seed);
    let stream = DomainStream::synthetic(&gen, 2, 0, args.seed);

    let d0 = stream.domain(0);
    let d1 = stream.domain(1);

    let ite = d0.train.true_ite();
    println!("tau: mean={:.3} std={:.3}", mean(&ite), std_dev(&ite));
    println!(
        "treated fraction: {:.2}",
        d0.train.n_treated() as f64 / d0.train.n() as f64
    );

    if args.has_flag("--supervised") {
        supervised_probe(&d0.train, &d0.test, args.seed);
        return;
    }
    if args.has_flag("--sweep") {
        cerl_term_sweep(&stream, &cfg, args.seed);
        return;
    }
    // The perf-trajectory lane: run every serving-path probe, write one
    // JSON artifact, and fail the process on any correctness miss — CI's
    // bench job doubles as a gate.
    if let Some(pos) = args.extra.iter().position(|f| f == "--trajectory") {
        let path = args
            .extra
            .get(pos + 1)
            .expect("--trajectory needs an output path");
        let probes = vec![
            matmul_probe(),
            serving_probe(&stream, &cfg, args.seed),
            batched_probe(&stream, &cfg, args.seed),
            scatter_probe(&stream, &cfg, args.seed),
            replicas_probe(&stream, &cfg, args.seed),
            orchestrate_probe(&stream, &cfg, args.seed),
            net_probe(&stream, &cfg, args.seed),
        ];
        let report = TrajectoryReport {
            schema: "cerl-bench-trajectory/v1".into(),
            scale: format!("{:?}", args.scale).to_lowercase(),
            seed: args.seed,
            probes,
        };
        let json = serde_json::to_string_pretty(&report).expect("trajectory serializes");
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("trajectory artifact written to {path}");
        exit_on_failure(&report.probes);
        return;
    }
    if args.has_flag("--serving") {
        exit_on_failure(&[serving_probe(&stream, &cfg, args.seed)]);
        return;
    }
    if args.has_flag("--concurrent") {
        if !concurrent_probe(&stream, &cfg, args.seed) {
            eprintln!("diag: --concurrent probe FAILED");
            std::process::exit(1);
        }
        return;
    }
    if args.has_flag("--batched") {
        exit_on_failure(&[batched_probe(&stream, &cfg, args.seed)]);
        return;
    }
    if args.has_flag("--scatter") {
        exit_on_failure(&[scatter_probe(&stream, &cfg, args.seed)]);
        return;
    }
    if args.has_flag("--replicas") {
        exit_on_failure(&[replicas_probe(&stream, &cfg, args.seed)]);
        return;
    }
    if args.has_flag("--orchestrate") {
        exit_on_failure(&[orchestrate_probe(&stream, &cfg, args.seed)]);
        return;
    }
    if args.has_flag("--net") {
        exit_on_failure(&[net_probe(&stream, &cfg, args.seed)]);
        return;
    }
    let mut model = CfrModel::new(d0.train.dim(), cfg, args.seed);
    let report = model.train(&d0.train, &d0.val);
    println!(
        "train: epochs={} best_val={:.4} final_train={:.4}",
        report.epochs_run, report.best_val_loss, report.final_train_loss
    );

    // Same-domain test.
    let est = model.predict_ite(&d0.test.x);
    let est_train = model.predict_ite(&d0.train.x);
    let m_train = EffectMetrics::on_dataset(&d0.train, &est_train);
    println!("train-set sqrtPEHE={:.3}", m_train.sqrt_pehe);
    let true_ite_test = d0.test.true_ite();
    println!(
        "pred ITE: mean={:.3} std={:.3} | true ITE: mean={:.3} std={:.3} corr={:.3}",
        mean(&est),
        std_dev(&est),
        mean(&true_ite_test),
        std_dev(&true_ite_test),
        {
            let mp = mean(&est);
            let mt = mean(&true_ite_test);
            let cov: f64 = est
                .iter()
                .zip(&true_ite_test)
                .map(|(a, b)| (a - mp) * (b - mt))
                .sum::<f64>()
                / est.len() as f64;
            cov / (std_dev(&est) * std_dev(&true_ite_test)).max(1e-12)
        }
    );
    let m = EffectMetrics::on_dataset(&d0.test, &est);
    let ate = d0.test.true_ate();
    let const_pred = vec![ate; d0.test.n()];
    let m_const = EffectMetrics::on_dataset(&d0.test, &const_pred);
    println!(
        "same-domain: model sqrtPEHE={:.3} ateErr={:.3} | constant-ATE sqrtPEHE={:.3}",
        m.sqrt_pehe, m.ate_error, m_const.sqrt_pehe
    );

    // Factual RMSE vs noise floor.
    let (y0, y1) = model.predict_potential_outcomes(&d0.test.x);
    let mut se = 0.0;
    for i in 0..d0.test.n() {
        let pred = if d0.test.t[i] { y1[i] } else { y0[i] };
        se += (pred - d0.test.y[i]).powi(2);
    }
    println!(
        "factual RMSE={:.3} (noise floor={:.3})",
        (se / d0.test.n() as f64).sqrt(),
        synthetic_config(args.scale).noise_sd
    );

    // Cross-domain degradation.
    let est_shift = model.predict_ite(&d1.test.x);
    let m_shift = EffectMetrics::on_dataset(&d1.test, &est_shift);
    println!(
        "cross-domain: sqrtPEHE={:.3} ateErr={:.3} (degradation x{:.2})",
        m_shift.sqrt_pehe,
        m_shift.ate_error,
        m_shift.sqrt_pehe / m.sqrt_pehe.max(1e-9)
    );
}
