//! Table II — synthetic data (§IV.C), two sequential domains, M = 10000:
//! CFR-A/B/C, CERL, and the three ablations (w/o FRT, w/o herding,
//! w/o cosine norm).

use crate::experiments::{
    run_two_domain_comparison, summarize_vs_reference, ComparisonCell, EstimatorSpec,
};
use crate::report::{fmt_metric, render_table, write_json};
use crate::scale::{model_config, synthetic_config, table2_memory, RunArgs};
use cerl_data::{DomainStream, SyntheticGenerator};
use serde::Serialize;

/// One row of Table II.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Strategy / ablation label.
    pub strategy: String,
    /// Previous-domain test metrics.
    pub previous: ComparisonCell,
    /// New-domain test metrics.
    pub new: ComparisonCell,
}

/// Full result of the Table II experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Result {
    /// Run arguments.
    pub args: RunArgs,
    /// Memory budget used for CERL.
    pub memory: usize,
    /// All rows, in paper order.
    pub rows: Vec<Table2Row>,
}

/// Run the Table II experiment.
pub fn run(args: &RunArgs) -> Table2Result {
    let mut cfg = model_config(args.scale);
    cfg.memory_size = table2_memory(args.scale);

    let gen = SyntheticGenerator::new(synthetic_config(args.scale), args.seed);
    eprintln!("[table2] generating {} replication streams …", args.reps);
    let streams: Vec<DomainStream> = (0..args.reps)
        .map(|r| DomainStream::synthetic(&gen, 2, r, args.seed))
        .collect();

    eprintln!(
        "[table2] running {} strategies …",
        EstimatorSpec::table2_lineup().len()
    );
    let outcomes =
        run_two_domain_comparison(&EstimatorSpec::table2_lineup(), &streams, &cfg, args.seed);
    let cerl = outcomes
        .iter()
        .find(|o| o.strategy == "CERL")
        .expect("lineup includes CERL");

    let rows = outcomes
        .iter()
        .map(|o| Table2Row {
            strategy: o.strategy.clone(),
            previous: summarize_vs_reference(&o.prev, &cerl.prev),
            new: summarize_vs_reference(&o.new, &cerl.new),
        })
        .collect();
    Table2Result {
        args: args.clone(),
        memory: cfg.memory_size,
        rows,
    }
}

/// Print in the paper's layout and dump JSON.
pub fn print(result: &Table2Result) {
    println!(
        "\nTable II — synthetic, two sequential domains, M = {} ({} reps, seed {})",
        result.memory, result.args.reps, result.args.seed
    );
    let headers = vec![
        "strategy",
        "prev √PEHE",
        "prev εATE",
        "new √PEHE",
        "new εATE",
    ];
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.strategy.clone(),
                fmt_metric(r.previous.sqrt_pehe, r.previous.pehe_worse),
                fmt_metric(r.previous.ate_error, r.previous.ate_worse),
                fmt_metric(r.new.sqrt_pehe, r.new.pehe_worse),
                fmt_metric(r.new.ate_error, r.new.ate_worse),
            ]
        })
        .collect();
    println!("{}", render_table(&headers, &rows));
    match write_json("table2", result) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
