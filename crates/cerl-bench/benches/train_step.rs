//! Cost of one full training epoch of the baseline CFR objective (Eq. 5),
//! with and without the Wasserstein balance term — where the per-step
//! budget actually goes.

use cerl_core::config::{CerlConfig, IpmKind};
use cerl_core::CfrModel;
use cerl_data::{SyntheticConfig, SyntheticGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train");
    group.sample_size(10);

    let gen = SyntheticGenerator::new(
        SyntheticConfig {
            n_units: 600,
            ..SyntheticConfig::default()
        },
        5,
    );
    let data = gen.domain(0, 0);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let splits = data.split(0.6, 0.2, &mut rng);

    for (label, ipm) in [
        ("wasserstein", IpmKind::Wasserstein),
        ("no-ipm", IpmKind::None),
    ] {
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 1;
        cfg.train.patience = 0;
        cfg.ipm = ipm;
        group.bench_with_input(BenchmarkId::new("one-epoch", label), &cfg, |bench, cfg| {
            bench.iter(|| {
                let mut model = CfrModel::new(splits.train.dim(), cfg.clone(), 7);
                model.train(&splits.train, &splits.val)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train_step);
criterion_main!(benches);
