//! GEMM kernel benchmarks: serial vs crossbeam-parallel paths at the shapes
//! the training loops actually produce (batch × features × hidden).

use cerl_math::matmul::{matmul, matmul_parallel, matmul_serial};
use cerl_math::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
    })
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    // (batch, in, out) shapes seen in the experiments.
    for &(m, k, n) in &[
        (128usize, 100usize, 64usize),
        (128, 600, 64),
        (256, 3477, 64),
    ] {
        let a = pseudo_random(m, k, 1);
        let b = pseudo_random(k, n, 2);
        group.bench_with_input(
            BenchmarkId::new("serial", format!("{m}x{k}x{n}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| matmul_serial(a, b)),
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", format!("{m}x{k}x{n}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| matmul_parallel(a, b)),
        );
        group.bench_with_input(
            BenchmarkId::new("auto", format!("{m}x{k}x{n}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| matmul(a, b)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
