//! Sinkhorn solver benchmarks: cost of the Wasserstein IPM per training
//! step as a function of group sizes and iteration budget (ablation 4 in
//! DESIGN.md).

use cerl_math::norms::pairwise_sq_dists;
use cerl_math::Matrix;
use cerl_ot::{sinkhorn_uniform, EpsilonMode, SinkhornConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn batch(n: usize, d: usize, seed: u64) -> Matrix {
    let mut state = seed;
    Matrix::from_fn(n, d, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as f64 / (1u64 << 31) as f64
    })
}

fn bench_sinkhorn(c: &mut Criterion) {
    let mut group = c.benchmark_group("sinkhorn");
    let d = 32; // representation dimension
    for &n in &[32usize, 64, 128] {
        let xt = batch(n, d, 3);
        let xc = batch(n, d, 4);
        let cost = pairwise_sq_dists(&xt, &xc);
        for &iters in &[10usize, 30, 100] {
            let cfg = SinkhornConfig {
                epsilon: 0.1,
                epsilon_mode: EpsilonMode::RelativeToMeanCost,
                iterations: iters,
            };
            group.bench_with_input(
                BenchmarkId::new(format!("n={n}"), format!("iters={iters}")),
                &(&cost, cfg),
                |bench, (cost, cfg)| bench.iter(|| sinkhorn_uniform(cost, cfg)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sinkhorn);
criterion_main!(benches);
