//! Data-generation throughput: the §IV.C synthetic generator (MVN with
//! hub-Toeplitz covariance) and the LDA-style document simulator.

use cerl_data::{SemiSyntheticConfig, SemiSyntheticGenerator, SyntheticConfig, SyntheticGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.sample_size(10);

    for &n in &[500usize, 2000] {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: n,
                ..SyntheticConfig::default()
            },
            3,
        );
        group.bench_with_input(BenchmarkId::new("synthetic", n), &gen, |bench, gen| {
            let mut rep = 0;
            bench.iter(|| {
                rep += 1;
                gen.domain(0, rep)
            })
        });
    }

    let semi = SemiSyntheticGenerator::new(SemiSyntheticConfig::small().with_units(500), 4);
    let all: Vec<usize> = (0..semi.config().topics.n_topics).collect();
    group.bench_function("semisynthetic-500-docs", |bench| {
        let mut rep = 0;
        bench.iter(|| {
            rep += 1;
            semi.dataset(&all, rep, "bench")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_datagen);
criterion_main!(benches);
