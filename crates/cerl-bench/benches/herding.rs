//! Herding exemplar selection vs random subsampling: wall-clock cost of
//! the greedy selection at realistic memory sizes (ablation 2 in
//! DESIGN.md). The accuracy side of this trade-off is covered by the
//! `herding_beats_random_on_mean_approximation` unit test.

use cerl_core::herding::{herding_select, random_select};
use cerl_math::Matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn reprs(n: usize, d: usize, seed: u64) -> Matrix {
    let mut state = seed;
    Matrix::from_fn(n, d, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as f64 / (1u64 << 31) as f64
    })
}

fn bench_herding(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory-selection");
    group.sample_size(20);
    let d = 32;
    for &(n, m) in &[(500usize, 50usize), (2000, 200), (5000, 500)] {
        let r = reprs(n, d, 9);
        group.bench_with_input(
            BenchmarkId::new("herding", format!("{n}->{m}")),
            &(&r, m),
            |bench, (r, m)| bench.iter(|| herding_select(r, *m)),
        );
        group.bench_with_input(
            BenchmarkId::new("random", format!("{n}->{m}")),
            &(n, m),
            |bench, (n, m)| {
                let mut rng = StdRng::seed_from_u64(11);
                bench.iter(|| random_select(*n, *m, &mut rng))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_herding);
criterion_main!(benches);
