//! Dirichlet sampling via normalized gammas.
//!
//! The topic-model simulator draws topic–word distributions and per-document
//! topic mixtures from Dirichlet priors.

use crate::gamma::sample_gamma_shape;
use rand::Rng;

/// Dirichlet distribution over the simplex of dimension `alphas.len()`.
#[derive(Debug, Clone)]
pub struct Dirichlet {
    alphas: Vec<f64>,
}

impl Dirichlet {
    /// Construct from concentration parameters (all strictly positive).
    pub fn new(alphas: Vec<f64>) -> Self {
        assert!(alphas.len() >= 2, "Dirichlet: need at least 2 components");
        assert!(
            alphas.iter().all(|&a| a > 0.0 && a.is_finite()),
            "Dirichlet: all concentrations must be positive and finite"
        );
        Self { alphas }
    }

    /// Symmetric Dirichlet with `k` components and concentration `alpha`.
    pub fn symmetric(k: usize, alpha: f64) -> Self {
        Self::new(vec![alpha; k])
    }

    /// Dimension of the simplex.
    pub fn len(&self) -> usize {
        self.alphas.len()
    }

    /// Always false (construction requires ≥ 2 components).
    pub fn is_empty(&self) -> bool {
        self.alphas.is_empty()
    }

    /// Draw one probability vector (sums to 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let mut draws: Vec<f64> = self
            .alphas
            .iter()
            .map(|&a| sample_gamma_shape(rng, a))
            .collect();
        let total: f64 = draws.iter().sum();
        if total <= 0.0 {
            // Vanishingly unlikely; fall back to uniform.
            let k = draws.len() as f64;
            draws.iter_mut().for_each(|v| *v = 1.0 / k);
        } else {
            draws.iter_mut().for_each(|v| *v /= total);
        }
        draws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_on_simplex() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dirichlet::symmetric(5, 0.5);
        for _ in 0..100 {
            let p = d.sample(&mut rng);
            assert_eq!(p.len(), 5);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn means_match_concentrations() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Dirichlet::new(vec![1.0, 2.0, 7.0]); // means 0.1, 0.2, 0.7
        let n = 50_000;
        let mut sums = [0.0; 3];
        for _ in 0..n {
            let p = d.sample(&mut rng);
            for (s, v) in sums.iter_mut().zip(&p) {
                *s += v;
            }
        }
        let means: Vec<f64> = sums.iter().map(|s| s / n as f64).collect();
        assert!((means[0] - 0.1).abs() < 0.005, "{means:?}");
        assert!((means[1] - 0.2).abs() < 0.005, "{means:?}");
        assert!((means[2] - 0.7).abs() < 0.005, "{means:?}");
    }

    #[test]
    fn small_alpha_is_sparse() {
        // With alpha << 1 most mass concentrates on few components.
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dirichlet::symmetric(10, 0.05);
        let mut max_sum = 0.0;
        let n = 2_000;
        for _ in 0..n {
            let p = d.sample(&mut rng);
            max_sum += p.iter().cloned().fold(0.0, f64::max);
        }
        // The largest coordinate should dominate on average.
        assert!(
            max_sum / n as f64 > 0.75,
            "mean max = {}",
            max_sum / n as f64
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_scalar() {
        let _ = Dirichlet::new(vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nonpositive() {
        let _ = Dirichlet::new(vec![1.0, 0.0]);
    }
}
