//! Deterministic seed derivation.
//!
//! Every experiment component (domain `d`, replication `r`, stage) derives
//! its own RNG from a base seed so runs are reproducible and components are
//! statistically decoupled. Derivation uses SplitMix64 finalization over the
//! (base, stream) pair.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derive a child seed from `(base, stream)`.
pub fn derive(base: u64, stream: u64) -> u64 {
    splitmix64(splitmix64(base) ^ stream.rotate_left(17))
}

/// Derive a child seed from a base and a label (e.g. `"domain-3"`).
pub fn derive_labeled(base: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    derive(base, h)
}

/// A seeded `StdRng` from `(base, stream)`.
pub fn rng(base: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive(base, stream))
}

/// A seeded `StdRng` from a base and label.
pub fn rng_labeled(base: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_labeled(base, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive(42, 1), derive(42, 1));
        assert_eq!(derive_labeled(42, "x"), derive_labeled(42, "x"));
    }

    #[test]
    fn streams_differ() {
        assert_ne!(derive(42, 1), derive(42, 2));
        assert_ne!(derive(42, 1), derive(43, 1));
        assert_ne!(derive_labeled(42, "a"), derive_labeled(42, "b"));
    }

    #[test]
    fn rngs_are_reproducible() {
        let mut a = rng(7, 3);
        let mut b = rng(7, 3);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn labels_map_to_distinct_streams() {
        let mut seen = std::collections::HashSet::new();
        for label in ["domain-0", "domain-1", "rep-0", "rep-1", "herding", "train"] {
            assert!(
                seen.insert(derive_labeled(99, label)),
                "collision for {label}"
            );
        }
    }
}
