//! Standard and general normal sampling (Marsaglia polar method).
//!
//! `rand_distr` is not in the offline dependency set, so the workspace
//! carries its own distributions. The polar method is branch-light, exact,
//! and needs only a uniform source.

use rand::Rng;

/// Standard normal sampler caching the spare variate from the polar method.
#[derive(Debug, Clone, Default)]
pub struct StandardNormal {
    spare: Option<f64>,
}

impl StandardNormal {
    /// New sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draw one `N(0, 1)` variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * f);
                return u * f;
            }
        }
    }

    /// Fill a vector with `n` standard normal variates.
    pub fn sample_vec<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Normal distribution with location `mean` and scale `sd ≥ 0`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Construct; panics if `sd` is negative or non-finite.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd >= 0.0 && sd.is_finite(), "Normal: invalid sd {sd}");
        assert!(mean.is_finite(), "Normal: invalid mean {mean}");
        Self { mean, sd }
    }

    /// Draw one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut sn = StandardNormal::new();
        self.mean + self.sd * sn.sample(rng)
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Distribution standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sn = StandardNormal::new();
        let n = 200_000;
        let xs = sn.sample_vec(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn tail_fractions_match_cdf() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sn = StandardNormal::new();
        let n = 100_000;
        let xs = sn.sample_vec(&mut rng, n);
        // P(X > 1.96) ≈ 0.025
        let frac = xs.iter().filter(|&&x| x > 1.96).count() as f64 / n as f64;
        assert!((frac - 0.025).abs() < 0.004, "frac={frac}");
    }

    #[test]
    fn located_scaled() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Normal::new(5.0, 2.0);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 5.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.15);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StandardNormal::new();
        let mut b = StandardNormal::new();
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.sample(&mut r1), b.sample(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "invalid sd")]
    fn rejects_negative_sd() {
        let _ = Normal::new(0.0, -1.0);
    }
}
