//! Categorical sampling via Walker's alias method, plus multinomial counts.
//!
//! The topic-model simulator draws millions of words from per-document
//! topic/word distributions; the alias method gives O(1) draws after O(k)
//! setup.

use rand::Rng;

/// Categorical distribution over `0..k` with O(1) sampling (alias method).
#[derive(Debug, Clone)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl Categorical {
    /// Build the alias table from non-negative weights (need not sum to 1).
    ///
    /// # Panics
    /// If `weights` is empty, contains a negative/non-finite value, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Categorical: empty weights");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "Categorical: invalid weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "Categorical: weights sum to zero");

        let k = weights.len();
        let mut prob = vec![0.0; k];
        let mut alias = vec![0usize; k];
        // Scaled probabilities; classify into small/large.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * k as f64 / total).collect();
        let mut small: Vec<usize> = Vec::with_capacity(k);
        let mut large: Vec<usize> = Vec::with_capacity(k);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let Some(s) = small.pop() {
            match large.pop() {
                Some(l) => {
                    prob[s] = scaled[s];
                    alias[s] = l;
                    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
                    if scaled[l] < 1.0 {
                        small.push(l);
                    } else {
                        large.push(l);
                    }
                }
                // Only rounding error can leave a "small" entry without a
                // partner; its true scaled probability is 1.
                None => prob[s] = 1.0,
            }
        }
        while let Some(l) = large.pop() {
            prob[l] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Always false (construction rejects empty weights).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let k = self.prob.len();
        let i = rng.gen_range(0..k);
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Draw multinomial counts: `n` trials over the categorical `weights`.
///
/// Returns a count vector of the same length as `weights`.
pub fn multinomial<R: Rng + ?Sized>(rng: &mut R, n: usize, weights: &[f64]) -> Vec<u32> {
    let cat = Categorical::new(weights);
    let mut counts = vec![0u32; weights.len()];
    for _ in 0..n {
        counts[cat.sample(rng)] += 1;
    }
    counts
}

/// Bernoulli draw with success probability `p ∈ [0, 1]`.
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    debug_assert!((0.0..=1.0).contains(&p), "bernoulli: p={p} outside [0,1]");
    rng.gen::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn frequencies_match_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = [1.0, 2.0, 3.0, 4.0];
        let cat = Categorical::new(&w);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[cat.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let want = w[i] / 10.0;
            let got = c as f64 / n as f64;
            assert!((got - want).abs() < 0.01, "cat {i}: got {got}, want {want}");
        }
    }

    #[test]
    fn single_category() {
        let mut rng = StdRng::seed_from_u64(2);
        let cat = Categorical::new(&[5.0]);
        for _ in 0..10 {
            assert_eq!(cat.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let mut rng = StdRng::seed_from_u64(3);
        let cat = Categorical::new(&[0.0, 1.0, 0.0, 1.0]);
        for _ in 0..10_000 {
            let s = cat.sample(&mut rng);
            assert!(s == 1 || s == 3, "drew zero-weight category {s}");
        }
    }

    #[test]
    fn multinomial_totals_and_distribution() {
        let mut rng = StdRng::seed_from_u64(4);
        let counts = multinomial(&mut rng, 50_000, &[0.2, 0.8]);
        assert_eq!(counts.iter().sum::<u32>(), 50_000);
        let frac = counts[1] as f64 / 50_000.0;
        assert!((frac - 0.8).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| bernoulli(&mut rng, 0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate={rate}");
    }

    #[test]
    #[should_panic(expected = "empty weights")]
    fn rejects_empty() {
        let _ = Categorical::new(&[]);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn rejects_all_zero() {
        let _ = Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn rejects_negative() {
        let _ = Categorical::new(&[1.0, -0.5]);
    }
}
