//! # cerl-rand
//!
//! Seeded sampling substrate for the CERL workspace. `rand_distr` is not in
//! the offline dependency set, so the distributions the paper's generators
//! need are implemented here:
//!
//! * [`normal`] — standard/general normal (Marsaglia polar method).
//! * [`gamma`] — Gamma (Marsaglia–Tsang) and Beta.
//! * [`dirichlet`] — Dirichlet via normalized gammas (topic simulator).
//! * [`categorical`] — alias-method categorical, multinomial, Bernoulli.
//! * [`mvn`] — multivariate normal via Cholesky (synthetic covariates).
//! * [`seeds`] — deterministic seed derivation for reproducible experiments.

#![warn(missing_docs)]

pub mod categorical;
pub mod dirichlet;
pub mod gamma;
pub mod mvn;
pub mod normal;
pub mod seeds;

pub use categorical::{bernoulli, multinomial, Categorical};
pub use dirichlet::Dirichlet;
pub use gamma::{Beta, Gamma};
pub use mvn::MultivariateNormal;
pub use normal::{Normal, StandardNormal};
