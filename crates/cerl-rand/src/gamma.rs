//! Gamma and Beta sampling (Marsaglia–Tsang squeeze method).

use crate::normal::StandardNormal;
use rand::Rng;

/// Gamma distribution with shape `alpha > 0` and scale `theta > 0`
/// (mean `alpha · theta`).
#[derive(Debug, Clone, Copy)]
pub struct Gamma {
    alpha: f64,
    theta: f64,
}

impl Gamma {
    /// Construct; panics on non-positive or non-finite parameters.
    pub fn new(alpha: f64, theta: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "Gamma: invalid shape {alpha}"
        );
        assert!(
            theta > 0.0 && theta.is_finite(),
            "Gamma: invalid scale {theta}"
        );
        Self { alpha, theta }
    }

    /// Draw one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.theta * sample_gamma_shape(rng, self.alpha)
    }

    /// Shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Scale parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

/// Draw from Gamma(shape = alpha, scale = 1) via Marsaglia–Tsang (2000).
///
/// For `alpha < 1` uses the boost `Gamma(α) = Gamma(α+1) · U^{1/α}`.
pub fn sample_gamma_shape<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> f64 {
    assert!(alpha > 0.0, "sample_gamma_shape: alpha must be positive");
    if alpha < 1.0 {
        let u: f64 = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        return sample_gamma_shape(rng, alpha + 1.0) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    let mut sn = StandardNormal::new();
    loop {
        let x = sn.sample(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        let x2 = x * x;
        // Squeeze acceptance, then log acceptance.
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v;
        }
        if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Beta distribution on `(0, 1)` with shape parameters `a, b > 0`.
#[derive(Debug, Clone, Copy)]
pub struct Beta {
    a: f64,
    b: f64,
}

impl Beta {
    /// Construct; panics on non-positive parameters.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(a > 0.0 && b > 0.0, "Beta: invalid parameters a={a}, b={b}");
        Self { a, b }
    }

    /// Draw one variate via the gamma ratio.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = sample_gamma_shape(rng, self.a);
        let y = sample_gamma_shape(rng, self.b);
        if x + y == 0.0 {
            0.5
        } else {
            x / (x + y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_stats(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn gamma_moments_large_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Gamma::new(4.0, 0.5); // mean 2, var 1
        let xs: Vec<f64> = (0..150_000).map(|_| g.sample(&mut rng)).collect();
        let (m, v) = sample_stats(&xs);
        assert!((m - 2.0).abs() < 0.02, "mean={m}");
        assert!((v - 1.0).abs() < 0.05, "var={v}");
    }

    #[test]
    fn gamma_moments_small_shape() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = Gamma::new(0.3, 2.0); // mean 0.6, var 1.2
        let xs: Vec<f64> = (0..200_000).map(|_| g.sample(&mut rng)).collect();
        let (m, v) = sample_stats(&xs);
        assert!((m - 0.6).abs() < 0.02, "mean={m}");
        assert!((v - 1.2).abs() < 0.1, "var={v}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn beta_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let b = Beta::new(2.0, 5.0); // mean 2/7 ≈ 0.2857
        let xs: Vec<f64> = (0..150_000).map(|_| b.sample(&mut rng)).collect();
        let (m, v) = sample_stats(&xs);
        let want_m = 2.0 / 7.0;
        let want_v = 2.0 * 5.0 / (49.0 * 8.0);
        assert!((m - want_m).abs() < 0.01, "mean={m}");
        assert!((v - want_v).abs() < 0.01, "var={v}");
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "invalid shape")]
    fn gamma_rejects_bad_shape() {
        let _ = Gamma::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid parameters")]
    fn beta_rejects_bad_params() {
        let _ = Beta::new(1.0, 0.0);
    }
}
