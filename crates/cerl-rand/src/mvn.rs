//! Multivariate normal sampling via Cholesky factorization.
//!
//! The synthetic-data generator (paper §IV.C) draws each domain's covariate
//! matrix `X_d ~ N(μ_d, Σ_d)` with domain-specific means and hub-Toeplitz
//! covariance structures.

use crate::normal::StandardNormal;
use cerl_math::decomp::cholesky_with_jitter;
use cerl_math::{MathError, Matrix};
use rand::Rng;

/// Multivariate normal `N(μ, Σ)` sampler.
///
/// The covariance is factored once at construction (with a jitter rescue for
/// near-singular inputs); each draw is `μ + L z` with `z ~ N(0, I)`.
#[derive(Debug, Clone)]
pub struct MultivariateNormal {
    mean: Vec<f64>,
    chol: Matrix,
}

impl MultivariateNormal {
    /// Construct from mean vector and covariance matrix.
    pub fn new(mean: Vec<f64>, sigma: &Matrix) -> Result<Self, MathError> {
        if sigma.rows() != mean.len() {
            return Err(MathError::DimensionMismatch {
                expected: sigma.rows(),
                actual: mean.len(),
                context: "MultivariateNormal mean",
            });
        }
        let (chol, _jitter) = cholesky_with_jitter(sigma, 1e-10, 14)?;
        Ok(Self { mean, chol })
    }

    /// Dimension of the distribution.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Draw one vector.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let d = self.dim();
        let mut sn = StandardNormal::new();
        let z = sn.sample_vec(rng, d);
        let mut out = self.mean.clone();
        // out += L z (L lower triangular); indexing mirrors the math.
        #[allow(clippy::needless_range_loop)]
        for i in 0..d {
            let mut s = 0.0;
            for k in 0..=i {
                s += self.chol[(i, k)] * z[k];
            }
            out[i] += s;
        }
        out
    }

    /// Draw `n` vectors as the rows of an `n × d` matrix.
    pub fn sample_matrix<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Matrix {
        let d = self.dim();
        let mut out = Matrix::zeros(n, d);
        for i in 0..n {
            let row = self.sample(rng);
            out.row_mut(i).copy_from_slice(&row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cerl_math::correlation::hub_toeplitz;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_cov(x: &Matrix) -> Matrix {
        let n = x.rows();
        let means = x.col_means();
        let d = x.cols();
        let mut cov = Matrix::zeros(d, d);
        for r in 0..n {
            let row = x.row(r);
            for i in 0..d {
                for j in 0..d {
                    cov[(i, j)] += (row[i] - means[i]) * (row[j] - means[j]);
                }
            }
        }
        cov.scale(1.0 / (n as f64 - 1.0))
    }

    #[test]
    fn mean_and_covariance_recovered() {
        let mut rng = StdRng::seed_from_u64(17);
        let r = hub_toeplitz(4, 0.6, 0.2, 1.0);
        let mean = vec![1.0, -2.0, 0.5, 3.0];
        let mvn = MultivariateNormal::new(mean.clone(), &r).unwrap();
        let x = mvn.sample_matrix(&mut rng, 40_000);

        let m = x.col_means();
        for (got, want) in m.iter().zip(&mean) {
            assert!((got - want).abs() < 0.03, "mean {got} vs {want}");
        }
        let cov = sample_cov(&x);
        assert!(
            cov.approx_eq(&r, 0.05),
            "covariance off:\n{cov:?}\nvs\n{r:?}"
        );
    }

    #[test]
    fn independent_when_identity() {
        let mut rng = StdRng::seed_from_u64(23);
        let mvn = MultivariateNormal::new(vec![0.0, 0.0], &Matrix::identity(2)).unwrap();
        let x = mvn.sample_matrix(&mut rng, 30_000);
        let cov = sample_cov(&x);
        assert!(cov[(0, 1)].abs() < 0.02, "off-diag {}", cov[(0, 1)]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let err = MultivariateNormal::new(vec![0.0; 3], &Matrix::identity(2));
        assert!(err.is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let r = hub_toeplitz(3, 0.5, 0.1, 1.0);
        let mvn = MultivariateNormal::new(vec![0.0; 3], &r).unwrap();
        let a = mvn.sample_matrix(&mut StdRng::seed_from_u64(7), 5);
        let b = mvn.sample_matrix(&mut StdRng::seed_from_u64(7), 5);
        assert!(a.approx_eq(&b, 0.0));
    }
}
