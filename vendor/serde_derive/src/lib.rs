//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! shim.
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote` in
//! the offline dependency set). Supports the shapes the CERL workspace
//! actually uses:
//!
//! * structs with named fields (any visibility, doc comments allowed),
//! * tuple structs (serialized transparently when single-field, as an
//!   array otherwise),
//! * enums with unit variants (externally tagged as strings) and newtype
//!   variants (externally tagged as single-key objects).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported
//! and produce a compile error naming this shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum Variant {
    Unit(String),
    Newtype(String),
}

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip attributes (`#[...]` / `#![...]`) and visibility (`pub`,
/// `pub(crate)`, ...) starting at `i`; returns the next index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    i += 1;
                }
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Split the comma-separated items of a brace/paren group, respecting
/// nested groups and angle brackets.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the offline serde shim cannot derive for generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut fields = Vec::new();
                for item in split_commas(&inner) {
                    let j = skip_attrs_and_vis(&item, 0);
                    match item.get(j) {
                        Some(TokenTree::Ident(id)) => fields.push(Field {
                            name: id.to_string(),
                        }),
                        None => continue,
                        other => return Err(format!("expected field name, found {other:?}")),
                    }
                }
                Ok(Shape::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Shape::TupleStruct {
                    name,
                    arity: split_commas(&inner).len(),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for item in split_commas(&inner) {
                    let j = skip_attrs_and_vis(&item, 0);
                    let vname = match item.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        None => continue,
                        other => return Err(format!("expected variant name, found {other:?}")),
                    };
                    match item.get(j + 1) {
                        None => variants.push(Variant::Unit(vname)),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            if split_commas(&inner).len() != 1 {
                                return Err(format!(
                                    "variant `{vname}`: the offline serde shim only supports \
                                     unit and single-field tuple variants"
                                ));
                            }
                            variants.push(Variant::Newtype(vname));
                        }
                        other => {
                            return Err(format!(
                                "variant `{vname}`: unsupported shape {other:?} \
                                 (struct variants are not supported by the offline serde shim)"
                            ))
                        }
                    }
                }
                Ok(Shape::Enum { name, variants })
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// `#[derive(Serialize)]` — see the crate docs for the supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "obj.push(({:?}.to_string(), ::serde::Serialize::serialize(&self.{})));",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(obj)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(v) => {
                        format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n")
                    }
                    Variant::Newtype(v) => format!(
                        "{name}::{v}(inner) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                         ::serde::Serialize::serialize(inner))]),\n"
                    ),
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// `#[derive(Deserialize)]` — see the crate docs for the supported shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{}: ::serde::field(obj, {:?})?,\n", f.name, f.name))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::Error> {{\n\
                         let obj = value.as_object().ok_or_else(|| ::serde::Error::custom(\
                             format!(\"expected object for {name}, found {{}}\", value.kind())))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                format!("Ok({name}(::serde::Deserialize::deserialize(value)?))")
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = value.as_array().ok_or_else(|| ::serde::Error::custom(\
                         \"expected array for {name}\"))?;\n\
                     if items.len() != {arity} {{\n\
                         return Err(::serde::Error::custom(format!(\
                             \"expected {arity} elements for {name}, found {{}}\", items.len())));\n\
                     }}\n\
                     Ok({name}({}))",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(_value: &::serde::Value) -> \
                     ::core::result::Result<Self, ::serde::Error> {{ Ok({name}) }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let str_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(v) => Some(format!("{v:?} => return Ok({name}::{v}),\n")),
                    Variant::Newtype(_) => None,
                })
                .collect();
            let obj_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Newtype(v) => Some(format!(
                        "{v:?} => return Ok({name}::{v}(::serde::Deserialize::deserialize(inner)?)),\n"
                    )),
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::Error> {{\n\
                         if let Some(tag) = value.as_str() {{\n\
                             match tag {{ {str_arms} _ => {{}} }}\n\
                         }}\n\
                         if let Some(obj) = value.as_object() {{\n\
                             if obj.len() == 1 {{\n\
                                 let (tag, inner) = (&obj[0].0, &obj[0].1);\n\
                                 match tag.as_str() {{ {obj_arms} _ => {{}} }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::custom(format!(\
                             \"no variant of {name} matches {{}}\", value.kind())))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
