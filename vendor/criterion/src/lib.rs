//! Offline stand-in for `criterion` (API-compatible subset).
//!
//! Benches compile and run with `cargo bench`, timing each closure over a
//! fixed-duration measurement window and printing mean ns/iter — no
//! statistics, plots, or baselines, but the same source-level API:
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, `criterion_group!`, and
//! `criterion_main!`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark registry/driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 100, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of timed samples (used to scale the
    /// measurement window in this shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {
        eprintln!();
    }
}

/// Identifier combining a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup call.
        black_box(routine());
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters_done += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.budget {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Scale the window with the requested sample size, bounded so whole
    // suites stay fast offline.
    let budget = Duration::from_millis((sample_size as u64 * 5).clamp(100, 1000));
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        budget,
    };
    f(&mut b);
    if b.iters_done > 0 {
        let ns = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
        eprintln!("  {label:<50} {ns:>14.1} ns/iter ({} iters)", b.iters_done);
    } else {
        eprintln!("  {label:<50} (no iterations run)");
    }
}

/// Define a function that runs the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` to run benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(1);
        let mut count = 0u64;
        group.bench_function("incr", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }
}
