//! Offline stand-in for `serde_json`: renders and parses the serde shim's
//! [`Value`] tree as JSON.
//!
//! Numbers round-trip exactly: integers are kept in 64-bit form and floats
//! are written with Rust's shortest-round-trip formatting. Non-finite
//! floats (which JSON cannot represent) are written as the tagged strings
//! `"NaN"`, `"inf"`, and `"-inf"`, which the shim's `f64` deserializer
//! accepts back.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

pub use serde::Error;

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serialize a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::deserialize(&value)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error::custom(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

// ---- writer -------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            '[',
            ']',
            indent,
            depth,
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            '{',
            '}',
            indent,
            depth,
            |out, (k, v), indent, depth| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() {
        out.push_str("\"NaN\"");
    } else if f == f64::INFINITY {
        out.push_str("\"inf\"");
    } else if f == f64::NEG_INFINITY {
        out.push_str("\"-inf\"");
    } else {
        // `{:?}` emits the shortest digit string that parses back to the
        // identical f64 (and always includes a `.` or exponent).
        let _ = write!(out, "{f:?}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -------------------------------------------------------------

/// Maximum container-nesting depth the parser accepts. Deeper documents
/// (which no legitimate snapshot produces) are rejected with a typed error
/// instead of risking recursion past the stack limit.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Parse a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::custom(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            )));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // writer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(18446744073709551615)),
            ("b".to_string(), Value::Float(0.1)),
            (
                "c".to_string(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("d".to_string(), Value::Str("line\n\"quote\"".to_string())),
            ("e".to_string(), Value::Int(-42)),
        ]);
        for pretty in [false, true] {
            let mut s = String::new();
            write_value(&mut s, &v, if pretty { Some(2) } else { None }, 0);
            assert_eq!(parse(&s).unwrap(), v, "pretty={pretty}: {s}");
        }
    }

    #[test]
    fn floats_roundtrip_bitwise() {
        for f in [
            0.1f64,
            1.0 / 3.0,
            -0.0,
            1e-300,
            2.2250738585072014e-308,
            123456789.12345679,
        ] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
        let nan: f64 = from_str(&to_string(&f64::NAN).unwrap()).unwrap();
        assert!(nan.is_nan());
        let inf: f64 = from_str(&to_string(&f64::INFINITY).unwrap()).unwrap();
        assert_eq!(inf, f64::INFINITY);
    }

    #[test]
    fn i64_extremes_roundtrip_exactly() {
        for v in [i64::MIN, i64::MIN + 1, -1, 0, i64::MAX] {
            let s = to_string(&v).unwrap();
            let back: i64 = from_str(&s).unwrap();
            assert_eq!(back, v, "{s}");
        }
        let u = u64::MAX;
        let back: u64 = from_str(&to_string(&u).unwrap()).unwrap();
        assert_eq!(back, u);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let hostile = "[".repeat(500_000);
        assert!(parse(&hostile).is_err());
        // Just inside the limit still parses.
        let ok = format!("{}{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
    }
}
