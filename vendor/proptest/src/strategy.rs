//! The [`Strategy`] trait and range strategies.

use crate::test_runner::TestRng;

/// A recipe for sampling test inputs.
pub trait Strategy {
    /// Type of the sampled value.
    type Value;

    /// Draw one input.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for std::ops::RangeInclusive<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {self:?}");
        lo + rng.below((hi - lo) as u64 + 1) as usize
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for std::ops::Range<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.below((self.end - self.start) as u64) as i32
    }
}

impl Strategy for std::ops::Range<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut TestRng) -> u32 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.below((self.end - self.start) as u64) as u32
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "invalid range {self:?}");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "invalid range {self:?}");
        lo + (hi - lo) * rng.unit_f64()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}
