//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

/// Vectors whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range {size:?}");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
