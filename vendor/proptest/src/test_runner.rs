//! Test-run configuration and the deterministic case RNG.

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` sampled inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-case RNG (SplitMix64 over a test-name hash).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for `(test name, case index)` — stable across runs and
    /// platforms so failures replay.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self {
            state: h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, width)`.
    pub fn below(&mut self, width: u64) -> u64 {
        ((self.next_u64() as u128 * width as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
