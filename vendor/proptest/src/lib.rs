//! Offline stand-in for `proptest` (API-compatible subset).
//!
//! Provides the `proptest!` macro, range/`any`/`vec` strategies, and
//! `prop_assert*` macros. Inputs are sampled from a deterministic RNG
//! derived from the test name and case index (no shrinking — a failing
//! case panics with the sampled values left in the assertion message).

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

use strategy::Strategy;
use test_runner::TestRng;

/// Strategy producing uniformly random values of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Uniform strategy over every value of `T` (`u64`, `usize`, `f64`, `bool`).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 2e6 - 1e6;
        mag * rng.unit_f64()
    }
}

/// Run property tests over sampled inputs.
///
/// Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(...)]` inner attribute followed by `#[test]`
/// functions whose arguments use `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unused_mut)]
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $( let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Assert within a property body (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 2usize..10, x in -1.5f64..2.5) {
            prop_assert!((2..10).contains(&n));
            prop_assert!((-1.5..2.5).contains(&x));
        }

        #[test]
        fn vecs_hit_requested_sizes(mut xs in prop::collection::vec(0.0f64..1.0, 1..7)) {
            prop_assert!(!xs.is_empty() && xs.len() < 7);
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn any_u64_varies(seed in any::<u64>()) {
            // Determinism across case replays is provided by the runner;
            // here just exercise the strategy.
            let _ = seed;
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::test_runner::TestRng::for_case("t", 3).next_u64();
        let b = crate::test_runner::TestRng::for_case("t", 3).next_u64();
        let c = crate::test_runner::TestRng::for_case("t", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
