//! Offline stand-in for `serde` (API-compatible subset).
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides the `Serialize` / `Deserialize` traits and derive macros the
//! CERL workspace uses. The data model is deliberately simple: values
//! serialize into a JSON-shaped [`Value`] tree, which `serde_json` renders
//! and parses. Derived impls follow serde's externally-tagged conventions
//! (structs → objects, unit enum variants → strings, newtype variants →
//! single-key objects), so the emitted JSON matches what upstream
//! serde_json would produce for the types in this workspace.

#![warn(missing_docs)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped intermediate value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used for negative integers).
    Int(i64),
    /// Unsigned integer (exact for the full `u64` range).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow as an array, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short description of the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the intermediate value tree.
    fn serialize(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse from the intermediate value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Look up and deserialize a named field of an object (derive helper).
pub fn field<T: Deserialize>(fields: &[(String, Value)], name: &str) -> Result<T, Error> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::deserialize(v).map_err(|e| Error::custom(format!("field `{name}`: {}", e.msg)))
        }
        None => Err(Error::custom(format!("missing field `{name}`"))),
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---- primitive impls ----------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // Non-finite floats are written as tagged strings (JSON has no
            // literal for them); accept them back here.
            Value::Str(s) if s == "NaN" => Ok(f64::NAN),
            Value::Str(s) if s == "inf" => Ok(f64::INFINITY),
            Value::Str(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
            other => Err(Error::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, found {}", value.kind())))?;
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected tuple of length {LEN}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-9i64).serialize()).unwrap(), -9);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(f64::deserialize(&f64::NAN.serialize()).unwrap().is_nan());
        assert!(bool::deserialize(&true.serialize()).unwrap());
        let v: Vec<usize> = Deserialize::deserialize(&vec![1usize, 2, 3].serialize()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let t: (usize, f64) = Deserialize::deserialize(&(3usize, 0.5f64).serialize()).unwrap();
        assert_eq!(t, (3, 0.5));
        let o: Option<f64> = Deserialize::deserialize(&None::<f64>.serialize()).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let obj = vec![("a".to_string(), Value::UInt(1))];
        assert_eq!(field::<u64>(&obj, "a").unwrap(), 1);
        assert!(field::<u64>(&obj, "b").is_err());
    }
}
