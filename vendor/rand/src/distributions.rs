//! Standard distributions for `Rng::gen`.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: uniform `[0,1)` for floats, uniform
/// over all values for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniformly random mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
