//! Sequence-related randomness (shuffling).

use crate::{Rng, RngCore};

/// Randomized operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
