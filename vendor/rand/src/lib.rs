//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides exactly the surface the CERL workspace uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`] (xoshiro256++
//! seeded via SplitMix64 — *not* bit-compatible with upstream `StdRng`, but
//! deterministic and statistically sound), uniform ranges for `gen_range`,
//! and [`seq::SliceRandom::shuffle`].

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform-sampling helpers over a raw [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build from a `u64` seed (SplitMix64-expanded internal state).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that support single uniform draws.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    // Widening-multiply mapping; bias is < 2^-64 per draw, negligible for
    // the index/width magnitudes used in this workspace.
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

impl SampleRange<usize> for std::ops::Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let width = self.end.checked_sub(self.start).filter(|&w| w > 0);
        let width = match width {
            Some(w) => w as u64,
            None => panic!("gen_range: empty range {}..{}", self.start, self.end),
        };
        self.start + uniform_u64_below(rng, width) as usize
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        if lo > hi {
            panic!("gen_range: empty range {lo}..={hi}");
        }
        let width = (hi - lo) as u64 + 1;
        if width == 0 {
            // Full u64-width inclusive range of usize.
            return rng.next_u64() as usize;
        }
        lo + uniform_u64_below(rng, width) as usize
    }
}

impl SampleRange<u64> for std::ops::Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        if self.end <= self.start {
            panic!("gen_range: empty range {}..{}", self.start, self.end);
        }
        self.start + uniform_u64_below(rng, self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        if !(self.start.is_finite() && self.end.is_finite()) || self.start >= self.end {
            panic!("gen_range: invalid range {}..{}", self.start, self.end);
        }
        let u: f64 = Standard.sample(rng);
        self.start + (self.end - self.start) * u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_unit_interval_with_decent_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=6usize);
            assert!((5..=6).contains(&w));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }
}
