//! Offline stand-in for the `crossbeam` scoped-thread API, implemented on
//! `std::thread::scope` (available since Rust 1.63).
//!
//! Only the subset the CERL workspace uses is provided: [`scope`] and
//! [`Scope::spawn`] where the spawned closure ignores its scope argument
//! (`scope.spawn(|_| ...)`), which is how the parallel GEMM kernel uses it.

#![warn(missing_docs)]

/// Handle passed to the [`scope`] closure; lets it spawn scoped workers.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Placeholder passed to spawned closures in place of crossbeam's nested
/// scope handle (the workspace's closures ignore it).
#[derive(Debug, Clone, Copy)]
pub struct SpawnScope;

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker thread bound to the enclosing scope.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(SpawnScope) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(SpawnScope))
    }
}

/// Run `f` with a scope handle; all spawned workers are joined before this
/// returns. Matching crossbeam's signature, the result is wrapped in
/// `Ok(..)`; a panicking worker propagates its panic at scope exit (std
/// semantics) instead of surfacing as `Err`, which is strictly stricter.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_workers_share_borrows_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        scope(|s| {
            for (o, &v) in out.iter_mut().zip(&data) {
                s.spawn(move |_| {
                    *o = v * 10;
                });
            }
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }
}
