//! Network front-end stress contract (`cerl-net`): hundreds of
//! concurrent socket clients — bursty pipeliners, slow readers,
//! mid-stream disconnects, hostile frames, deadline floods — against
//! one reactor thread, with every successful response bitwise-checked
//! against the in-process engine, and hot swaps plus shard rebalances
//! executing under live socket load with **zero serve faults**.
//!
//! These tests are part of the release-mode CI lane: they are
//! correctness tests first (bitwise payloads, typed rejections,
//! fault-class counters) and load tests second. No wall-clock
//! assertions — on a one-CPU host the reactor and the inference pool
//! time-share, so only counters and payloads are trustworthy.

use cerl::net::wire::{self, FrameReader};
use cerl::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn quick_cfg() -> CerlConfig {
    let mut cfg = CerlConfig::quick_test();
    cfg.train.epochs = 5;
    cfg.memory_size = 80;
    cfg
}

fn quick_stream(domains: usize) -> DomainStream {
    let gen = SyntheticGenerator::new(
        SyntheticConfig {
            n_units: 300,
            ..SyntheticConfig::small()
        },
        71,
    );
    DomainStream::synthetic(&gen, domains, 0, 71)
}

fn stage1_engine(stream: &DomainStream) -> CerlEngine {
    let mut engine = CerlEngineBuilder::new(quick_cfg())
        .seed(17)
        .build()
        .unwrap();
    engine
        .observe(&stream.domain(0).train, &stream.domain(0).val)
        .unwrap();
    engine
}

/// Connect with retries: hundreds of simultaneous connects can
/// transiently overflow the accept backlog on a one-CPU host.
fn connect_retry(addr: SocketAddr) -> NetClient {
    for _ in 0..100 {
        match NetClient::connect(addr) {
            Ok(client) => return client,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    panic!("could not connect to {addr}");
}

fn assert_bitwise(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: row count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: row {i} differs");
    }
}

/// Value of an un-labelled counter/gauge line in a Prometheus-style
/// exposition (`name value`).
fn metric_value(exposition: &str, name: &str) -> Option<u64> {
    exposition
        .lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .and_then(|v| v.trim().parse().ok())
}

/// Hundreds of concurrently-open connections hammer one reactor:
/// bursty pipeliners, a slow-reading thread, hostile frames (corrupt
/// magic, oversized length prefix, truncated-then-close), and
/// mid-stream disconnects — interleaved with healthy traffic whose
/// every response must be bitwise identical to the in-process engine.
#[test]
fn hundreds_of_concurrent_clients_are_served_bitwise_identically() {
    const THREADS: usize = 6;
    const CLIENTS_PER_THREAD: usize = 40;
    const ROUNDS: usize = 3;
    const PIPELINE: usize = 2;

    let stream = quick_stream(1);
    let serving = Arc::new(ServingEngine::new(stage1_engine(&stream)));
    let scheduler = Arc::new(BatchScheduler::new(
        Arc::clone(&serving),
        BatchConfig {
            max_wait: Duration::from_millis(2),
            queue_capacity: 8192,
            ..BatchConfig::default()
        },
    ));
    // Observability plane rides along under full load: 1-in-4 request
    // tracing plus a live admin listener scraped mid-stress.
    let ring = TraceRing::new(4096, 4);
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::Scheduler(Arc::clone(&scheduler)),
        NetServerConfig {
            admin_bind: Some("127.0.0.1:0".into()),
            trace: Some(Arc::clone(&ring)),
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let admin_addr = server.admin_addr().unwrap();

    // Eight distinct request shapes; client c uses shape c % 8.
    let base = &stream.domain(0).test.x;
    let slices: Vec<Matrix> = (0..8).map(|k| base.slice_rows(k * 4, k * 4 + 4)).collect();
    let refs: Vec<Vec<f64>> = slices
        .iter()
        .map(|x| serving.predict_ite(x).unwrap())
        .collect();

    let verified_ok = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let slices = &slices;
            let refs = &refs;
            let verified_ok = Arc::clone(&verified_ok);
            scope.spawn(move || {
                // Open the whole herd first so all connections are
                // simultaneously live, then run pipelined rounds.
                let mut clients: Vec<NetClient> = (0..CLIENTS_PER_THREAD)
                    .map(|_| connect_retry(addr))
                    .collect();
                for round in 0..ROUNDS {
                    for (c, client) in clients.iter_mut().enumerate() {
                        let shape = (t * CLIENTS_PER_THREAD + c) % 8;
                        let x = &slices[shape];
                        for _ in 0..PIPELINE {
                            client.send_request(&vec![0; x.rows()], x, None).unwrap();
                        }
                    }
                    for (c, client) in clients.iter_mut().enumerate() {
                        let shape = (t * CLIENTS_PER_THREAD + c) % 8;
                        for _ in 0..PIPELINE {
                            // Thread 0 reads slowly: its sockets hold
                            // server-side responses longer than the rest.
                            if t == 0 {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            match client.recv_response().unwrap() {
                                WireResponse::Ite { ite, .. } => {
                                    assert_bitwise(
                                        &ite,
                                        &refs[shape],
                                        &format!("thread {t} client {c} round {round}"),
                                    );
                                    verified_ok.fetch_add(1, Ordering::Relaxed);
                                }
                                WireResponse::Error { status, detail, .. } => {
                                    panic!("healthy client rejected: {status:?}: {detail}")
                                }
                            }
                        }
                    }
                }

                // Hostile peer 1: plausible length prefix, garbage body.
                let mut corrupt = connect_retry(addr);
                let mut frame = 24u32.to_le_bytes().to_vec();
                frame.extend(std::iter::repeat_n(0xAB, 24));
                corrupt.send_raw(&frame).unwrap();
                match corrupt.recv_response().unwrap() {
                    WireResponse::Error { status, .. } => {
                        assert_eq!(status, WireStatus::MalformedRequest)
                    }
                    other => panic!("corrupt frame accepted: {other:?}"),
                }
                assert!(
                    corrupt.recv_response().is_err(),
                    "server should close a corrupt connection"
                );

                // Hostile peer 2: length prefix past the frame cap.
                let mut oversized = connect_retry(addr);
                oversized
                    .send_raw(&((64 << 20) as u32).to_le_bytes())
                    .unwrap();
                match oversized.recv_response().unwrap() {
                    WireResponse::Error { status, .. } => {
                        assert_eq!(status, WireStatus::MalformedRequest)
                    }
                    other => panic!("oversized prefix accepted: {other:?}"),
                }

                // Hostile peer 3: truncated frame, then vanish. No
                // response is owed; the server just reclaims the slot.
                let mut truncated = connect_retry(addr);
                truncated.send_raw(&64u32.to_le_bytes()).unwrap();
                truncated.send_raw(&[0u8; 10]).unwrap();
                drop(truncated);

                // Mid-stream disconnect: pipeline work, never read it.
                let mut ghost = connect_retry(addr);
                let x = &slices[t % 8];
                ghost.send_request(&vec![0; x.rows()], x, None).unwrap();
                ghost.send_request(&vec![0; x.rows()], x, None).unwrap();
                drop(ghost);
            });
        }

        // Observer: while the herd is live, probe the UDP health
        // socket and scrape the admin plane — watching must never
        // perturb serving.
        scope.spawn(move || {
            let udp = UdpSocket::bind("127.0.0.1:0").unwrap();
            udp.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut buf = [0u8; 64];
            let mut admin = connect_retry(admin_addr);
            for _ in 0..3 {
                udp.send_to(b"ping", addr).unwrap();
                let (n, _) = udp.recv_from(&mut buf).unwrap();
                let reply = std::str::from_utf8(&buf[..n]).unwrap();
                assert!(reply.starts_with("ok:1:"), "udp probe: {reply}");

                assert!(admin.health().unwrap().starts_with("ok:1:"));
                let metrics = admin.scrape_metrics().unwrap();
                assert!(metrics.contains("# TYPE cerl_net_requests_total counter"));
                assert!(
                    metrics.contains("cerl_net_conn_requests_total{conn="),
                    "mid-stress scrape should list live per-connection rows"
                );
                // The accounting header is always present; span lines
                // only appear once a sampled span retires, which the
                // final dump below asserts on.
                assert!(admin.trace_dump().unwrap().starts_with("trace seen="));
                std::thread::sleep(Duration::from_millis(20));
            }
        });
    });

    // Ghost responses land asynchronously even after every client
    // thread has joined; scrape the admin plane until the exposition
    // and the in-process snapshot agree on a quiescent count.
    let mut admin = connect_retry(admin_addr);
    let (metrics, snap) = {
        let mut last = None;
        for _ in 0..200 {
            let metrics = admin.scrape_metrics().unwrap();
            let snap = server.stats();
            let ok = metric_value(&metrics, "cerl_net_responses_ok_total").unwrap();
            let requests = metric_value(&metrics, "cerl_net_requests_total").unwrap();
            if ok == snap.responses_ok && requests == snap.requests {
                last = Some((metrics, snap));
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        last.expect("admin exposition never agreed with the stats snapshot")
    };
    let expected_ok = THREADS * CLIENTS_PER_THREAD * ROUNDS * PIPELINE;
    // The scraped totals cover every bitwise-verified response (ghost
    // responses may add a few on top — they were served correctly to
    // sockets nobody read).
    assert!(
        metric_value(&metrics, "cerl_net_responses_ok_total").unwrap() >= expected_ok as u64,
        "scraped ok-responses below the bitwise-verified count"
    );
    assert!(metrics.contains("cerl_net_conn_requests_total{conn="));
    assert!(metrics.contains("# TYPE cerl_serve_queue_wait_seconds histogram"));
    assert!(snap.admin_requests >= 7, "both admin clients were counted");
    // Each thread holds all of its clients open at once.
    assert!(snap.peak_connections >= CLIENTS_PER_THREAD as u64);

    // 1-in-4 sampled spans: no drops at this capacity, every stamp
    // sequence monotone.
    let trace = ring.stats();
    assert!(trace.sampled >= (expected_ok / 4) as u64);
    assert_eq!(trace.dropped, 0);
    let spans = ring.dump(4096);
    assert!(!spans.is_empty());
    assert!(spans.iter().all(|s| s.is_monotone()), "non-monotone span");
    assert_eq!(verified_ok.load(Ordering::Relaxed), expected_ok);
    assert!(
        snap.responses_ok >= expected_ok as u64,
        "ok responses {} < verified {}",
        snap.responses_ok,
        expected_ok
    );
    // Two hostile peers per thread earn a typed MalformedRequest; the
    // truncated peer never completes a frame, so it earns nothing.
    assert_eq!(snap.malformed, (THREADS * 2) as u64);
    assert_eq!(snap.rejected_client, snap.malformed);
    assert_eq!(
        snap.rejected_serve, 0,
        "hostile or disconnecting clients must never register as serve faults"
    );
    // Every peer that read a response was necessarily accepted: the
    // clients plus the corrupt-magic and oversized peers, and the two
    // admin connections (admin accepts count too). The ghost and
    // truncated peers drop their sockets without waiting, so their
    // accept events may still be queued when this snapshot is taken.
    let guaranteed = (THREADS * (CLIENTS_PER_THREAD + 2) + 2) as u64;
    let ceiling = (THREADS * (CLIENTS_PER_THREAD + 4) + 2) as u64;
    assert!(
        snap.accepted >= guaranteed && snap.accepted <= ceiling,
        "accepted {} outside [{guaranteed}, {ceiling}]",
        snap.accepted
    );
    server.shutdown().unwrap();
}

/// A hot swap lands while socket traffic is in full flight: every
/// response is bitwise attributable to exactly one engine version, the
/// version a connection observes never moves backwards, and requests
/// sent after the swap returns are answered by the successor.
#[test]
fn hot_swap_under_socket_load_keeps_every_answer_attributable() {
    let stream = quick_stream(2);
    let engine = stage1_engine(&stream);
    let x = stream.domain(0).test.x.slice_rows(0, 8);

    let expected_v1 = engine.predict_ite(&x).unwrap();
    let successor = {
        let mut replica = engine.clone();
        replica
            .observe(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        replica
    };
    let expected_v2 = successor.predict_ite(&x).unwrap();
    assert_ne!(expected_v1, expected_v2, "stage-2 model should differ");

    let serving = Arc::new(ServingEngine::new(engine));
    let scheduler = Arc::new(BatchScheduler::new(
        Arc::clone(&serving),
        BatchConfig {
            max_wait: Duration::from_millis(2),
            queue_capacity: 8192,
            ..BatchConfig::default()
        },
    ));
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::Scheduler(Arc::clone(&scheduler)),
        NetServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    let swapped = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for t in 0..4 {
            let x = &x;
            let expected_v1 = &expected_v1;
            let expected_v2 = &expected_v2;
            let swapped = Arc::clone(&swapped);
            scope.spawn(move || {
                let mut client = connect_retry(addr);
                let mut seen_v2 = false;
                let mut post_swap = 0;
                loop {
                    let sent_after_swap = swapped.load(Ordering::SeqCst);
                    let ite = client.predict(&vec![0; x.rows()], x, None).unwrap();
                    let is_v1 = ite
                        .iter()
                        .zip(expected_v1)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    let is_v2 = ite
                        .iter()
                        .zip(expected_v2)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(
                        is_v1 || is_v2,
                        "thread {t}: response matches neither engine version"
                    );
                    if is_v2 {
                        seen_v2 = true;
                    } else {
                        assert!(!seen_v2, "thread {t}: version went backwards");
                        assert!(
                            !sent_after_swap,
                            "thread {t}: request sent after swap served by old engine"
                        );
                    }
                    if sent_after_swap {
                        post_swap += 1;
                        if post_swap >= 3 {
                            break;
                        }
                    }
                }
            });
        }

        std::thread::sleep(Duration::from_millis(40));
        serving.swap_engine(successor);
        swapped.store(true, Ordering::SeqCst);
    });

    let snap = server.stats();
    assert_eq!(snap.rejected_serve, 0);
    assert_eq!(snap.rejected_client, 0);
    assert_eq!(snap.responses_ok, snap.requests);
    assert_eq!(serving.stats().swaps, 1);
    server.shutdown().unwrap();
}

/// A deadline flood behind a slow request is shed with typed
/// `Deadline` responses before reaching the inference pool; whatever
/// does get admitted is still answered bitwise-correctly, and a
/// well-behaved client on another connection is never starved.
#[test]
fn deadline_floods_are_shed_not_served_late() {
    const FLOOD: usize = 30;

    let stream = quick_stream(1);
    let serving = Arc::new(ServingEngine::new(stage1_engine(&stream)));
    let scheduler = Arc::new(BatchScheduler::new(
        Arc::clone(&serving),
        BatchConfig {
            max_wait: Duration::from_millis(2),
            queue_capacity: 8192,
            ..BatchConfig::default()
        },
    ));
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::Scheduler(Arc::clone(&scheduler)),
        NetServerConfig {
            // A tiny admission window makes the flood queue behind the
            // slow request instead of pouring into the backend.
            max_inflight_per_conn: 2,
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let base = &stream.domain(0).test.x;
    let idx: Vec<usize> = (0..8192).map(|i| i % base.rows()).collect();
    let big = base.select_rows(&idx);
    let big_ref = serving.predict_ite(&big).unwrap();
    let small = base.slice_rows(0, 4);
    let small_ref = serving.predict_ite(&small).unwrap();

    std::thread::scope(|scope| {
        // A polite client keeps round-tripping on its own connection
        // throughout the flood; it must never see an error.
        let done = Arc::new(AtomicBool::new(false));
        let polite_done = Arc::clone(&done);
        let small_ref = &small_ref;
        let small_c = &small;
        scope.spawn(move || {
            let mut client = connect_retry(addr);
            let mut served = 0u32;
            while !polite_done.load(Ordering::SeqCst) || served < 5 {
                let ite = client
                    .predict(&vec![0; small_c.rows()], small_c, None)
                    .unwrap();
                assert_bitwise(&ite, small_ref, "polite client during flood");
                served += 1;
            }
        });

        let mut flood = connect_retry(addr);
        let big_id = flood
            .send_request(&vec![0; big.rows()], &big, None)
            .unwrap();
        let mut flood_ids = Vec::with_capacity(FLOOD);
        for _ in 0..FLOOD {
            flood_ids.push(
                flood
                    .send_request(
                        &vec![0; small.rows()],
                        &small,
                        Some(Duration::from_millis(1)),
                    )
                    .unwrap(),
            );
        }

        let mut ok = 0usize;
        let mut shed = 0usize;
        let mut seen = std::collections::HashMap::new();
        for _ in 0..=FLOOD {
            let response = flood.recv_response().unwrap();
            match response {
                WireResponse::Ite { request_id, ite } => {
                    if request_id == big_id {
                        assert_bitwise(&ite, &big_ref, "slow request");
                    } else {
                        assert!(flood_ids.contains(&request_id));
                        assert_bitwise(&ite, small_ref, "admitted flood request");
                        ok += 1;
                    }
                    assert!(seen.insert(request_id, true).is_none());
                }
                WireResponse::Error {
                    request_id,
                    status,
                    detail,
                } => {
                    assert_eq!(
                        status,
                        WireStatus::Deadline,
                        "unexpected rejection: {detail}"
                    );
                    assert!(flood_ids.contains(&request_id));
                    assert!(detail.contains("1 ms"), "{detail}");
                    shed += 1;
                    assert!(seen.insert(request_id, false).is_none());
                }
            }
        }
        assert_eq!(
            ok + shed,
            FLOOD,
            "every flooded request gets exactly one answer"
        );
        assert!(
            shed > 0,
            "a 1 ms deadline behind an 8192-row request must shed"
        );
        done.store(true, Ordering::SeqCst);
    });

    let snap = server.stats();
    assert!(snap.deadline_shed > 0);
    assert_eq!(snap.rejected_client, snap.deadline_shed);
    assert_eq!(snap.rejected_serve, 0);
    server.shutdown().unwrap();
}

/// A reader that uploads a huge pipeline and then refuses to read trips
/// write backpressure: the reactor stops reading that socket instead of
/// buffering without bound, a fast client stays fully served meanwhile,
/// and once the slow reader finally drains, every one of its responses
/// is intact and bitwise-correct.
#[test]
fn slow_readers_trip_write_backpressure_without_blocking_fast_clients() {
    const SLOW_REQUESTS: usize = 24;
    const SLOW_ROWS: usize = 4096;

    let stream = quick_stream(1);
    let serving = Arc::new(ServingEngine::new(stage1_engine(&stream)));
    let scheduler = Arc::new(BatchScheduler::new(
        Arc::clone(&serving),
        BatchConfig {
            max_wait: Duration::from_millis(2),
            queue_capacity: 8192,
            ..BatchConfig::default()
        },
    ));
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::Scheduler(Arc::clone(&scheduler)),
        NetServerConfig {
            // Shrink the kernel send buffer and the high-water mark so
            // a non-reading peer trips the pause deterministically.
            send_buffer_bytes: Some(4096),
            write_high_water: 64 * 1024,
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let base = &stream.domain(0).test.x;
    let idx: Vec<usize> = (0..SLOW_ROWS).map(|i| i % base.rows()).collect();
    let big = base.select_rows(&idx);
    let big_ref = serving.predict_ite(&big).unwrap();
    let small = base.slice_rows(0, 4);
    let small_ref = serving.predict_ite(&small).unwrap();

    // The slow reader is split in two: a writer half that uploads the
    // whole pipeline (blocking on TCP once the server pauses reads) and
    // a reader half that stays idle long enough for the backlog to
    // build, then drains everything.
    let stream_w = TcpStream::connect(addr).unwrap();
    stream_w.set_nodelay(true).unwrap();
    let mut stream_r = stream_w.try_clone().unwrap();

    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut stream_w = stream_w;
            let mut frame = Vec::new();
            for id in 1..=SLOW_REQUESTS as u64 {
                frame.clear();
                wire::encode_request(
                    &WireRequest {
                        request_id: id,
                        deadline_ms: 0,
                        cols: big.cols() as u32,
                        tags: vec![0; big.rows()],
                        covariates: big.as_slice().to_vec(),
                    },
                    &mut frame,
                );
                stream_w.write_all(&frame).unwrap();
            }
        });

        // While the slow reader's backlog builds, a fast client on its
        // own connection keeps getting served.
        let mut fast = connect_retry(addr);
        for i in 0..15 {
            let ite = fast.predict(&vec![0; small.rows()], &small, None).unwrap();
            assert_bitwise(&ite, &small_ref, &format!("fast client round {i}"));
            std::thread::sleep(Duration::from_millis(10));
        }

        // Now drain the slow connection: all responses, in order,
        // bitwise-identical to the in-process reference.
        let mut reader = FrameReader::new();
        let mut buf = [0u8; 64 * 1024];
        let mut received = 0u64;
        while received < SLOW_REQUESTS as u64 {
            if let Some(payload) = reader.next_frame().unwrap() {
                match wire::decode_response(&payload).unwrap() {
                    WireResponse::Ite { request_id, ite } => {
                        received += 1;
                        assert_eq!(request_id, received, "responses arrive in order");
                        assert_bitwise(&ite, &big_ref, "slow reader drain");
                    }
                    WireResponse::Error { status, detail, .. } => {
                        panic!("slow reader rejected: {status:?}: {detail}")
                    }
                }
                continue;
            }
            let n = stream_r.read(&mut buf).unwrap();
            assert!(n > 0, "server closed the slow connection early");
            reader.extend(&buf[..n]);
        }
    });

    let snap = server.stats();
    assert!(
        snap.backpressure_pauses >= 1,
        "a {SLOW_REQUESTS}x{SLOW_ROWS}-row unread pipeline must trip the high-water pause"
    );
    assert_eq!(snap.rejected_serve, 0);
    assert_eq!(snap.rejected_client, 0);
    assert_eq!(snap.responses_ok, SLOW_REQUESTS as u64 + 15);
    server.shutdown().unwrap();
}

/// A live fleet behind the socket front-end goes through a shard hot
/// swap and then a full dual-route rebalance while mixed-domain scatter
/// traffic is in flight: every row of every response is bitwise
/// attributable to one of the two engine generations, and the move
/// completes with zero serve faults.
#[test]
fn rebalance_under_socket_load_with_zero_serve_faults() {
    let stream = quick_stream(2);
    let engine = stage1_engine(&stream);
    let successor = {
        let mut replica = engine.clone();
        replica
            .observe(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        replica
    };

    let x = stream.domain(0).test.x.slice_rows(0, 8);
    let tags: Vec<u64> = (0..x.rows() as u64).map(|i| i % 2).collect();
    let gen_a = engine.predict_ite(&x).unwrap();
    let gen_b = successor.predict_ite(&x).unwrap();
    assert_ne!(gen_a, gen_b);

    let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
    let router = Arc::new(
        ShardRouter::with_batching(
            vec![engine.clone(), engine.clone()],
            map,
            BatchConfig {
                max_wait: Duration::from_millis(1),
                queue_capacity: 8192,
                ..BatchConfig::default()
            },
        )
        .unwrap(),
    );
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::Router(Arc::clone(&router)),
        NetServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for t in 0..3 {
            let x = &x;
            let tags = &tags;
            let gen_a = &gen_a;
            let gen_b = &gen_b;
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut client = connect_retry(addr);
                while !done.load(Ordering::SeqCst) {
                    let ite = client.predict(tags, x, None).unwrap();
                    for (i, got) in ite.iter().enumerate() {
                        assert!(
                            got.to_bits() == gen_a[i].to_bits()
                                || got.to_bits() == gen_b[i].to_bits(),
                            "thread {t} row {i}: answer from no known engine generation"
                        );
                    }
                }
            });
        }

        // Choreograph fleet surgery under live scatter load.
        std::thread::sleep(Duration::from_millis(30));
        router.swap_shard_engine(1, successor.clone()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        router.begin_rebalance(1, 0, successor.clone()).unwrap();
        std::thread::sleep(Duration::from_millis(30)); // dual-route window
        router.commit_rebalance().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        done.store(true, Ordering::SeqCst);
    });

    // After the commit, shard 0 runs the successor and owns both
    // domains: a fresh request is pure second-generation.
    let mut client = connect_retry(addr);
    let ite = client.predict(&tags, &x, None).unwrap();
    assert_bitwise(&ite, &gen_b, "post-rebalance scatter");

    let snap = server.stats();
    assert_eq!(snap.rejected_serve, 0, "fleet surgery must not shed load");
    assert_eq!(snap.rejected_client, 0);
    assert_eq!(snap.responses_ok, snap.requests);
    server.shutdown().unwrap();
}
