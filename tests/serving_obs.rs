//! Trace-integrity contract (`cerl-obs`): release-mode checks that the
//! observability plane tells the truth under concurrency. Sampled spans
//! must carry monotone stage stamps, the queue-wait a span reports must
//! agree with the scheduler's own `LatencyHistogram` within a generous
//! band, and overflowing a deliberately tiny ring must increment the
//! drop counter without ever corrupting a live span — probed by 100+
//! concurrent writers racing a continuous reader.
//!
//! Like `serving_net`, these run in the release CI lane and make no
//! wall-clock assertions: on a one-CPU host only counters, stamps, and
//! payloads are trustworthy.

use cerl::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn quick_cfg() -> CerlConfig {
    let mut cfg = CerlConfig::quick_test();
    cfg.train.epochs = 5;
    cfg.memory_size = 80;
    cfg
}

fn quick_stream() -> DomainStream {
    let gen = SyntheticGenerator::new(
        SyntheticConfig {
            n_units: 300,
            ..SyntheticConfig::small()
        },
        83,
    );
    DomainStream::synthetic(&gen, 1, 0, 83)
}

/// 128 concurrent socket clients under 1-in-2 sampling: every sampled
/// span retires with non-decreasing stage stamps and a `Written` mark,
/// and the queue-wait interval the spans report (`Submitted` →
/// `QueueWait`) brackets the scheduler's histogram view of the same
/// wait. The band is generous — the histogram is bucket-resolution and
/// the two sides read different monotonic clocks — but it would catch a
/// stamp wired to the wrong stage or a clock read out of order.
#[test]
fn sampled_spans_are_monotone_and_agree_with_the_latency_histogram() {
    const THREADS: usize = 8;
    const CLIENTS_PER_THREAD: usize = 16;
    const ROUNDS: usize = 2;

    let stream = quick_stream();
    let mut engine = CerlEngineBuilder::new(quick_cfg())
        .seed(29)
        .build()
        .unwrap();
    engine
        .observe(&stream.domain(0).train, &stream.domain(0).val)
        .unwrap();
    let serving = Arc::new(ServingEngine::new(engine));
    let scheduler = Arc::new(BatchScheduler::new(
        Arc::clone(&serving),
        BatchConfig {
            max_wait: Duration::from_millis(2),
            queue_capacity: 8192,
            ..BatchConfig::default()
        },
    ));
    let ring = TraceRing::new(4096, 2);
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::Scheduler(Arc::clone(&scheduler)),
        NetServerConfig {
            trace: Some(Arc::clone(&ring)),
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let x = stream.domain(0).test.x.slice_rows(0, 4);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let x = &x;
            scope.spawn(move || {
                let mut clients: Vec<NetClient> = (0..CLIENTS_PER_THREAD)
                    .map(|_| NetClient::connect(addr).unwrap())
                    .collect();
                for _ in 0..ROUNDS {
                    for client in clients.iter_mut() {
                        client.predict(&[0; 4], x, None).unwrap();
                    }
                }
            });
        }
    });

    let total = (THREADS * CLIENTS_PER_THREAD * ROUNDS) as u64;
    let stats = ring.stats();
    assert!(stats.seen >= total);
    assert!(stats.sampled >= total / 2, "1-in-2 sampling undercounted");
    assert_eq!(stats.dropped, 0, "a 4096-slot ring must not overflow");

    let spans = ring.dump(4096);
    assert!(spans.len() >= (total / 2) as usize);
    let mut waits = Vec::new();
    for span in &spans {
        assert!(span.is_monotone(), "span {} stamps regressed", span.span_id);
        assert!(
            span.stamp(Stage::Written).is_some(),
            "retired span {} never stamped Written",
            span.span_id
        );
        waits.push(span.wait_nanos(Stage::Submitted, Stage::QueueWait).unwrap());
    }
    waits.sort_unstable();

    // Cross-check the spans against the scheduler's histogram. Both
    // measure submit-to-batch-start; the spans see a uniform 1-in-2
    // sample of the histogram's population.
    let hist = scheduler.stats().queue_wait;
    assert_eq!(hist.count, total);
    let slack = Duration::from_millis(20).as_nanos() as u64;
    let median = waits[waits.len() / 2];
    assert!(
        median <= hist.p99.as_nanos() as u64 + slack,
        "sampled median wait {median}ns beyond histogram p99 {:?}",
        hist.p99
    );
    assert!(
        hist.p50.as_nanos() as u64 <= waits[waits.len() - 1] + slack,
        "histogram p50 {:?} beyond the largest sampled wait",
        hist.p50
    );
    server.shutdown().unwrap();
}

/// 128 writer threads hammer an 8-slot, sample-everything ring while a
/// reader dumps continuously: overflow must be shed onto the drop
/// counter (every offer is either sampled or dropped, exactly), and no
/// dump — concurrent or final — may ever surface a torn span. Each
/// writer encodes its identity into both `conn` and `request_id`, so a
/// slot that mixed two spans' fields is caught immediately.
#[test]
fn ring_overflow_is_counted_without_corrupting_live_spans() {
    const WRITERS: u64 = 128;
    const SPANS_PER_WRITER: u64 = 200;

    let ring = TraceRing::new(8, 1);
    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                for i in 0..SPANS_PER_WRITER {
                    let Some(span) = ring.begin(t, t * 1_000_000 + i) else {
                        continue;
                    };
                    span.stamp(Stage::Decoded);
                    span.stamp(Stage::Submitted);
                    // Hold the span briefly so rivals collide with a
                    // live occupant, not just with each other.
                    if i % 8 == 0 {
                        std::thread::yield_now();
                    }
                    span.stamp(Stage::Inference);
                    span.stamp(Stage::Written);
                    span.complete();
                }
            });
        }

        // Reader races the writers: every snapshot it sees must be
        // internally consistent, live traffic notwithstanding.
        let reader_ring = Arc::clone(&ring);
        scope.spawn(move || {
            for _ in 0..2_000 {
                for span in reader_ring.dump(8) {
                    assert!(span.is_monotone(), "concurrent dump saw torn stamps");
                    assert_eq!(
                        span.request_id / 1_000_000,
                        span.conn,
                        "slot mixed fields from two different spans"
                    );
                }
            }
        });
    });

    let stats = ring.stats();
    assert_eq!(stats.seen, WRITERS * SPANS_PER_WRITER);
    assert!(
        stats.dropped > 0,
        "128 writers on 8 slots must overflow; drops were not counted"
    );
    // Sample-everything mode: every offer either claimed a slot or was
    // dropped — nothing vanishes unaccounted.
    assert_eq!(stats.sampled + stats.dropped, stats.seen);
    assert_eq!(stats.completed, stats.sampled, "every claimed span retired");
    for span in ring.dump(8) {
        assert!(span.is_monotone());
        assert_eq!(span.request_id / 1_000_000, span.conn);
    }
}
