//! Serving-API integration tests through the public facade: typed error
//! paths (no panics on malformed requests), builder validation, batched
//! inference, and snapshot restart semantics.

use cerl::prelude::*;

fn quick_cfg() -> CerlConfig {
    let mut cfg = CerlConfig::quick_test();
    cfg.train.epochs = 6;
    cfg.memory_size = 80;
    cfg
}

fn quick_stream(domains: usize, seed: u64) -> DomainStream {
    let gen = SyntheticGenerator::new(
        SyntheticConfig {
            n_units: 400,
            ..SyntheticConfig::small()
        },
        seed,
    );
    DomainStream::synthetic(&gen, domains, 0, seed)
}

// ---- error paths: no panics, the right variant ---------------------------

#[test]
fn predicting_from_untrained_model_is_a_typed_error() {
    let engine = CerlEngineBuilder::new(quick_cfg()).build().unwrap();
    let x = Matrix::zeros(3, 10);
    assert!(matches!(engine.predict_ite(&x), Err(CerlError::NotTrained)));
    assert!(matches!(
        engine.predict_potential_outcomes(&x),
        Err(CerlError::NotTrained)
    ));
    assert!(matches!(engine.embed(&x), Err(CerlError::NotTrained)));
    assert!(matches!(
        engine.predict_ite_batch(std::slice::from_ref(&x)),
        Err(CerlError::NotTrained)
    ));
    assert!(matches!(engine.save_bytes(), Err(CerlError::NotTrained)));

    // Same contract on the research types and every lineup member.
    let cerl = Cerl::try_new(10, quick_cfg(), 1).unwrap();
    assert!(matches!(
        cerl.try_predict_ite(&x),
        Err(CerlError::NotTrained)
    ));
    for est in paper_lineup(10, &quick_cfg(), 1) {
        assert!(
            matches!(est.try_predict_ite(&x), Err(CerlError::NotTrained)),
            "{} should report NotTrained",
            est.name()
        );
    }
    let s = SLearner::new(10, quick_cfg(), 1);
    assert!(matches!(s.try_predict_ite(&x), Err(CerlError::NotTrained)));
    let t = TLearner::new(10, quick_cfg(), 1);
    assert!(matches!(t.try_predict_ite(&x), Err(CerlError::NotTrained)));
}

#[test]
fn mismatched_covariate_dimension_is_a_typed_error() {
    let stream = quick_stream(2, 201);
    let d_in = stream.domain(0).train.dim();
    let mut engine = CerlEngineBuilder::new(quick_cfg())
        .seed(201)
        .build()
        .unwrap();
    engine
        .observe(&stream.domain(0).train, &stream.domain(0).val)
        .unwrap();

    // Predict with the wrong width.
    let bad = Matrix::zeros(5, d_in + 1);
    match engine.predict_ite(&bad) {
        Err(CerlError::DimensionMismatch { expected, found }) => {
            assert_eq!(expected, d_in);
            assert_eq!(found, d_in + 1);
        }
        other => panic!("expected DimensionMismatch, got {:?}", other.map(|_| ())),
    }

    // Observe a later domain with the wrong width; engine state must
    // survive untouched and keep serving.
    let narrow = stream
        .domain(1)
        .train
        .select(&(0..stream.domain(1).train.n()).collect::<Vec<_>>());
    let mut wrong = narrow.clone();
    wrong.x = Matrix::zeros(narrow.n(), d_in + 3);
    match engine.observe(&wrong, &stream.domain(1).val) {
        Err(CerlError::DimensionMismatch { expected, found }) => {
            assert_eq!(expected, d_in);
            assert_eq!(found, d_in + 3);
        }
        other => panic!("expected DimensionMismatch, got {:?}", other.map(|_| ())),
    }
    assert_eq!(
        engine.stage(),
        1,
        "failed observe must not advance the stage"
    );
    assert!(engine.predict_ite(&stream.domain(0).test.x).is_ok());
}

type ConfigTweak = Box<dyn Fn(&mut CerlConfig)>;

#[test]
fn invalid_configs_name_the_offending_field() {
    let cases: Vec<(&'static str, ConfigTweak)> = vec![
        ("memory_size", Box::new(|c| c.memory_size = 0)),
        ("alpha", Box::new(|c| c.alpha = -1.0)),
        ("delta", Box::new(|c| c.delta = f64::NAN)),
        ("train.epochs", Box::new(|c| c.train.epochs = 0)),
        ("train.batch_size", Box::new(|c| c.train.batch_size = 1)),
        (
            "train.learning_rate",
            Box::new(|c| c.train.learning_rate = 0.0),
        ),
        ("net.repr_dim", Box::new(|c| c.net.repr_dim = 0)),
        (
            "sinkhorn_iterations",
            Box::new(|c| c.sinkhorn_iterations = 0),
        ),
    ];
    for (expected_field, tweak) in cases {
        let mut cfg = quick_cfg();
        tweak(&mut cfg);
        match CerlEngineBuilder::new(cfg.clone()).build() {
            Err(CerlError::InvalidConfig { field, .. }) => assert_eq!(field, expected_field),
            other => panic!(
                "{expected_field}: expected InvalidConfig, got {:?}",
                other.map(|_| ())
            ),
        }
        // The research constructor reports the identical error.
        match Cerl::try_new(10, cfg, 0) {
            Err(CerlError::InvalidConfig { field, .. }) => assert_eq!(field, expected_field),
            other => panic!(
                "{expected_field}: expected InvalidConfig, got {:?}",
                other.map(|_| ())
            ),
        }
    }
}

#[test]
fn tiny_domains_are_rejected_not_panicked_on() {
    let stream = quick_stream(1, 202);
    let tiny = stream.domain(0).train.select(&[0, 1, 2]);
    let mut engine = CerlEngineBuilder::new(quick_cfg()).build().unwrap();
    match engine.observe(&tiny, &stream.domain(0).val) {
        Err(CerlError::DatasetTooSmall {
            required: 4,
            found: 3,
        }) => {}
        other => panic!("expected DatasetTooSmall, got {:?}", other.map(|_| ())),
    }
}

// ---- batched inference ----------------------------------------------------

#[test]
fn batch_and_chunked_inference_agree_with_single_calls_across_estimators() {
    let stream = quick_stream(1, 203);
    let d_in = stream.domain(0).train.dim();
    let x = &stream.domain(0).test.x;
    let halves: Vec<Matrix> = {
        let n = x.rows();
        let first: Vec<usize> = (0..n / 2).collect();
        let second: Vec<usize> = (n / 2..n).collect();
        vec![x.select_rows(&first), x.select_rows(&second)]
    };
    for mut est in paper_lineup(d_in, &quick_cfg(), 203) {
        est.try_observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        let single = est.try_predict_ite(x).unwrap();
        let batched: Vec<f64> = est
            .try_predict_ite_batch(&halves)
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(batched, single, "{}", est.name());
    }
}

// ---- snapshot restart ------------------------------------------------------

#[test]
fn snapshot_survives_restart_and_keeps_learning() {
    let stream = quick_stream(3, 204);
    let mut engine = CerlEngineBuilder::new(quick_cfg())
        .seed(204)
        .build()
        .unwrap();
    engine
        .observe(&stream.domain(0).train, &stream.domain(0).val)
        .unwrap();
    engine
        .observe(&stream.domain(1).train, &stream.domain(1).val)
        .unwrap();

    let bytes = engine.save_bytes().unwrap();
    drop(engine); // "process exit"

    let mut restored = CerlEngine::load_bytes(&bytes).unwrap();
    assert_eq!(restored.stage(), 2);
    let report = restored
        .observe(&stream.domain(2).train, &stream.domain(2).val)
        .unwrap();
    assert_eq!(report.stage, 3);

    // Still serves sensible estimates for every seen domain.
    for d in 0..3 {
        let test = &stream.domain(d).test;
        let m = EffectMetrics::on_dataset(test, &restored.predict_ite(&test.x).unwrap());
        assert!(m.sqrt_pehe.is_finite(), "domain {d}");
    }
}

// ---- hostile shard-map metadata (snapshot format v4) -----------------------

/// A trained snapshot carrying a valid 2-shard map, as a JSON string the
/// hostile tests below can doctor at the document level (the typed
/// constructors refuse to build these maps, a wire document cannot).
fn snapshot_text_with_map(seed: u64) -> String {
    let stream = quick_stream(1, seed);
    let mut engine = CerlEngineBuilder::new(quick_cfg())
        .seed(seed)
        .build()
        .unwrap();
    engine
        .observe(&stream.domain(0).train, &stream.domain(0).val)
        .unwrap();
    let map = ShardMap::from_pairs(2, &[(5, 0), (9, 1)]).unwrap();
    let bytes = engine
        .snapshot()
        .unwrap()
        .with_shard_map(map)
        .to_bytes()
        .unwrap();
    String::from_utf8(bytes).unwrap()
}

/// Every load path must reject the bytes with a typed error — never
/// panic, and never build a serving fleet from a hostile topology.
fn assert_rejected_everywhere(hostile: &str, expected_field: &str) {
    match CerlEngine::load_bytes(hostile.as_bytes()) {
        Err(CerlError::InvalidConfig { field, .. }) => assert_eq!(field, expected_field),
        other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
    }
    assert!(ServingEngine::from_snapshot_bytes(hostile.as_bytes()).is_err());
    assert!(matches!(
        ShardRouter::from_snapshot_bytes(&[hostile.as_bytes().to_vec()], None),
        Err(ServeError::Engine(CerlError::InvalidConfig { .. }))
    ));
}

#[test]
fn shard_map_with_out_of_range_shard_id_fails_closed() {
    let text = snapshot_text_with_map(206);
    assert!(
        text.contains(r#""domain":9,"replicas":[1]"#),
        "layout assumption"
    );
    let hostile = text.replace(
        r#""domain":9,"replicas":[1]"#,
        r#""domain":9,"replicas":[7]"#,
    );
    assert_rejected_everywhere(&hostile, "shard_map");
}

#[test]
fn shard_map_with_duplicate_domain_entries_fails_closed() {
    let text = snapshot_text_with_map(207);
    // Domain 5 now claims both shard 0 and shard 1.
    let hostile = text.replace(
        r#""domain":9,"replicas":[1]"#,
        r#""domain":5,"replicas":[1]"#,
    );
    assert_rejected_everywhere(&hostile, "shard_map");
    // Exact duplicate entries (same shard twice) are rejected too: the
    // wire document bypassed the constructor's dedup, so it is not the
    // canonical form the fleet agreed on.
    let hostile = text.replace(
        r#""domain":9,"replicas":[1]"#,
        r#""domain":5,"replicas":[0]"#,
    );
    assert_rejected_everywhere(&hostile, "shard_map");
}

#[test]
fn shard_map_with_hostile_replica_sets_fails_closed() {
    // Replica-set pathologies the typed constructors cannot express but
    // a wire document can: every load path rejects them, none panics.
    let text = snapshot_text_with_map(212);
    // Duplicate replica ids inside one set.
    let hostile = text.replace(
        r#""domain":9,"replicas":[1]"#,
        r#""domain":9,"replicas":[1,1]"#,
    );
    assert_rejected_everywhere(&hostile, "shard_map");
    // Unsorted set: not the canonical form the fleet agreed on.
    let hostile = text.replace(
        r#""domain":9,"replicas":[1]"#,
        r#""domain":9,"replicas":[1,0]"#,
    );
    assert_rejected_everywhere(&hostile, "shard_map");
    // Empty replica-set: the domain would be unserveable.
    let hostile = text.replace(
        r#""domain":9,"replicas":[1]"#,
        r#""domain":9,"replicas":[]"#,
    );
    assert_rejected_everywhere(&hostile, "shard_map");
    // Replica id at (and past) the declared fleet size.
    let hostile = text.replace(
        r#""domain":9,"replicas":[1]"#,
        r#""domain":9,"replicas":[0,2]"#,
    );
    assert_rejected_everywhere(&hostile, "shard_map");
}

#[test]
fn v2_single_shard_snapshots_still_load_as_replica_sets() {
    // A v2-era document spells the map `"shard": M` and stamps format
    // version 2; the upgrade path must read it as `replicas == [M]`.
    let text = snapshot_text_with_map(213);
    assert!(text.contains(r#""format_version":4"#), "layout assumption");
    let vintage = text
        .replace(r#""format_version":4"#, r#""format_version":2"#)
        .replace(r#""domain":5,"replicas":[0]"#, r#""domain":5,"shard":0"#)
        .replace(r#""domain":9,"replicas":[1]"#, r#""domain":9,"shard":1"#);
    assert!(CerlEngine::load_bytes(vintage.as_bytes()).is_ok());
    let snapshot = ModelSnapshot::from_bytes(vintage.as_bytes()).unwrap();
    let map = snapshot.shard_map.expect("map survives the upgrade");
    assert_eq!(map.replicas_for(5).unwrap().shards(), &[0]);
    assert_eq!(map.replicas_for(9).unwrap().shards(), &[1]);
    assert!(!map.is_replicated());
}

#[test]
fn shard_map_referencing_a_missing_shard_fails_the_fleet_restore() {
    // The map itself is valid but declares 3 shards; only one replica
    // exists, so the fleet cannot be seated — typed, and it names the
    // expected vs found counts.
    let text = snapshot_text_with_map(208);
    let hostile = text.replace(r#""shards":2"#, r#""shards":3"#);
    // A lone engine restore tolerates it (routing is the fleet's concern)...
    assert!(CerlEngine::load_bytes(hostile.as_bytes()).is_ok());
    // ...the fleet restore does not.
    match ShardRouter::from_snapshot_bytes(&[hostile.into_bytes()], None) {
        Err(
            e @ ServeError::FleetSizeMismatch {
                expected: 3,
                found: 1,
            },
        ) => {
            let msg = e.to_string();
            assert!(
                msg.contains("3 shard(s)") && msg.contains("1 replica snapshot(s)"),
                "{msg}"
            );
        }
        other => panic!("expected FleetSizeMismatch, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn shard_index_outside_the_map_fails_closed() {
    let stream = quick_stream(1, 209);
    let mut engine = CerlEngineBuilder::new(quick_cfg())
        .seed(209)
        .build()
        .unwrap();
    engine
        .observe(&stream.domain(0).train, &stream.domain(0).val)
        .unwrap();
    let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)]).unwrap();
    // The builder API itself can express this hostile claim; loading may not.
    let bytes = engine
        .snapshot()
        .unwrap()
        .with_shard_map(map)
        .with_shard_index(5)
        .to_bytes()
        .unwrap();
    match CerlEngine::load_bytes(&bytes) {
        Err(CerlError::InvalidConfig { field, .. }) => assert_eq!(field, "shard_map"),
        other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn truncated_snapshots_fail_closed() {
    let stream = quick_stream(1, 205);
    let mut engine = CerlEngineBuilder::new(quick_cfg())
        .seed(205)
        .build()
        .unwrap();
    engine
        .observe(&stream.domain(0).train, &stream.domain(0).val)
        .unwrap();
    let bytes = engine.save_bytes().unwrap();
    for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            matches!(
                CerlEngine::load_bytes(&bytes[..cut]),
                Err(CerlError::Snapshot(SnapshotError::Malformed(_)))
            ),
            "cut at {cut} must be Malformed"
        );
    }
}
