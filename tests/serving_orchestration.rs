//! Orchestrated rebalancing under fire: a multi-move topology plan
//! executes — one canary-watched begin → probe → commit move at a time —
//! while concurrent mixed-domain scatter clients hammer the fleet.
//!
//! Every response is checked bitwise against the per-(shard, version)
//! reference engines, which pins the orchestration invariants:
//!
//! * **zero client errors** — no request fails at any point of the plan;
//! * **bitwise-correct rows throughout** — a row is only ever answered by
//!   an engine that legitimately held the row's domain under the
//!   topology the request pinned: the original holder before the
//!   domain's move commits, the committed successor after — never a
//!   destination shard's *pre-commit* engine;
//! * **plan determinism** — the same `(topology, target, loads)` triple
//!   yields the same move order, byte for byte;
//! * **auto-abort** — an injected canary regression (the destination
//!   shard failing requests on its published version during a move's
//!   dual-route window) halts the plan with `ServeError::PlanHalted`,
//!   aborts the in-flight move, and leaves the committed prefix serving
//!   every domain from a valid topology. Client faults are excluded from
//!   the verdict, so a hostile flood of unroutable requests running at
//!   the same time cannot be what trips it.

use cerl::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;

fn quick_cfg() -> CerlConfig {
    let mut cfg = CerlConfig::quick_test();
    cfg.train.epochs = 6;
    cfg.memory_size = 80;
    cfg
}

/// Shared fixture. The fleet starts as:
///
/// * shard 0 (`e0`): domains 0, 1, 2 — running hot;
/// * shard 1 (`e1`): domains 3, 4;
/// * shard 2 (`e2`): domain 5.
///
/// The target moves domain 2 to shard 1 (successor `s1` = `e1` retrained
/// on it) and domain 1 to shard 2 (successor `s2` = `e2` retrained on
/// it). All five engines have distinct weights, so every response row
/// identifies the engine that produced it.
struct Fixture {
    stream: DomainStream,
    e0: CerlEngine,
    e1: CerlEngine,
    e2: CerlEngine,
    s1: CerlEngine,
    s2: CerlEngine,
}

const DOMAINS: u64 = 6;

fn initial_map() -> ShardMap {
    ShardMap::from_pairs(3, &[(0, 0), (1, 0), (2, 0), (3, 1), (4, 1), (5, 2)]).unwrap()
}

fn target_map() -> ShardMap {
    ShardMap::from_pairs(3, &[(0, 0), (1, 2), (2, 1), (3, 1), (4, 1), (5, 2)]).unwrap()
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            89,
        );
        let stream = DomainStream::synthetic(&gen, DOMAINS as usize, 0, 89);
        let observe = |engine: &mut CerlEngine, domains: &[usize]| {
            for &d in domains {
                engine
                    .observe(&stream.domain(d).train, &stream.domain(d).val)
                    .unwrap();
            }
        };
        let mut e0 = CerlEngineBuilder::new(quick_cfg())
            .seed(51)
            .build()
            .unwrap();
        observe(&mut e0, &[0, 1, 2]);
        let mut e1 = CerlEngineBuilder::new(quick_cfg())
            .seed(52)
            .build()
            .unwrap();
        observe(&mut e1, &[3, 4]);
        let mut e2 = CerlEngineBuilder::new(quick_cfg())
            .seed(53)
            .build()
            .unwrap();
        observe(&mut e2, &[5]);
        let mut s1 = e1.clone();
        observe(&mut s1, &[2]);
        let mut s2 = e2.clone();
        observe(&mut s2, &[1]);
        Fixture {
            stream,
            e0,
            e1,
            e2,
            s1,
            s2,
        }
    })
}

/// One client's fixed mixed-domain request plus the bitwise reference
/// answer of every engine that could legitimately serve any of its rows.
struct MixedRequest {
    tags: Vec<u64>,
    x: Matrix,
    by_engine: [Vec<f64>; 5], // e0, e1, e2, s1, s2
}

fn mixed_request(fx: &Fixture, salt: usize) -> MixedRequest {
    let mut tags = Vec::new();
    let mut data = Vec::new();
    let mut cols = 0;
    for i in 0..12usize {
        let domain = ((salt + i) % DOMAINS as usize) as u64;
        let x = &fx.stream.domain(domain as usize).test.x;
        let row = (salt * 11 + i * 5) % x.rows();
        let slice = x.slice_rows(row, row + 1);
        cols = slice.cols();
        data.extend_from_slice(slice.as_slice());
        tags.push(domain);
    }
    let x = Matrix::from_vec(tags.len(), cols, data);
    let by_engine = [
        fx.e0.predict_ite(&x).unwrap(),
        fx.e1.predict_ite(&x).unwrap(),
        fx.e2.predict_ite(&x).unwrap(),
        fx.s1.predict_ite(&x).unwrap(),
        fx.s2.predict_ite(&x).unwrap(),
    ];
    MixedRequest { tags, x, by_engine }
}

/// Check one scatter response: versions monotone per shard, every row
/// answered by an engine that held its domain under some topology the
/// request could legitimately have pinned.
fn check_response(
    request: &MixedRequest,
    response: &ScatterResponse,
    last_versions: &mut HashMap<usize, u64>,
) {
    for &(shard, version) in &response.shard_versions {
        let last = last_versions.entry(shard).or_insert(0);
        assert!(
            version >= *last,
            "shard {shard} version went backwards: {version} after {last}"
        );
        *last = version;
    }
    let version_of = |shard: usize| {
        response
            .shard_versions
            .iter()
            .find(|&&(s, _)| s == shard)
            .map(|&(_, v)| v)
    };
    let [by_e0, by_e1, by_e2, by_s1, by_s2] = &request.by_engine;
    for (i, value) in response.ite.iter().enumerate() {
        let bits = value.to_bits();
        match request.tags[i] {
            // Domain 0 never moves and shard 0 never swaps.
            0 => assert_eq!(bits, by_e0[i].to_bits(), "row {i}: domain 0 diverged"),
            // Moving domains: the source's engine (old topology) or the
            // committed successor (new topology) — a successor answer
            // requires its destination shard to be on version 2, because
            // the map flips only after the destination publishes.
            1 => {
                let ok = bits == by_e0[i].to_bits()
                    || (bits == by_s2[i].to_bits() && version_of(2) == Some(2));
                assert!(ok, "row {i}: domain 1 answered by a stray engine");
            }
            2 => {
                let ok = bits == by_e0[i].to_bits()
                    || (bits == by_s1[i].to_bits() && version_of(1) == Some(2));
                assert!(ok, "row {i}: domain 2 answered by a stray engine");
            }
            // Stationary domains on destination shards: the version the
            // response reports for their shard decides which engine's
            // bits are legitimate — a torn engine matches neither.
            3 | 4 => {
                let expected = match version_of(1) {
                    Some(1) => by_e1[i].to_bits(),
                    Some(2) => by_s1[i].to_bits(),
                    other => panic!(
                        "row {i}: domain {} without a shard-1 pin ({other:?})",
                        request.tags[i]
                    ),
                };
                assert_eq!(
                    bits, expected,
                    "row {i}: domain {} diverged",
                    request.tags[i]
                );
            }
            5 => {
                let expected = match version_of(2) {
                    Some(1) => by_e2[i].to_bits(),
                    Some(2) => by_s2[i].to_bits(),
                    other => panic!("row {i}: domain 5 without a shard-2 pin ({other:?})"),
                };
                assert_eq!(bits, expected, "row {i}: domain 5 diverged");
            }
            other => unreachable!("unexpected tag {other}"),
        }
    }
}

fn successor_for(fx: &Fixture, mv: &ShardMove) -> Result<CerlEngine, ServeError> {
    match mv.domain {
        2 => Ok(fx.s1.clone()),
        1 => Ok(fx.s2.clone()),
        other => panic!("no successor prepared for domain {other}"),
    }
}

fn stress_orchestrator(router: &Arc<ShardRouter>) -> RebalanceOrchestrator {
    RebalanceOrchestrator::new(
        Arc::clone(router),
        OrchestratorConfig {
            canary: CanaryConfig {
                window_requests: 8,
                max_wait: Duration::from_secs(60),
                max_error_rate: 0.05,
                // Latency on a loaded CI box is too noisy to gate a
                // correctness stress on; the verdict logic has its own
                // deterministic unit tests.
                max_p95_ratio: 1e9,
            },
            max_staged: 2,
        },
    )
}

fn run_stress(batch: Option<BatchConfig>) {
    let fx = fixture();
    let engines = vec![fx.e0.clone(), fx.e1.clone(), fx.e2.clone()];
    let router = Arc::new(match batch {
        Some(cfg) => ShardRouter::with_batching(engines, initial_map(), cfg).unwrap(),
        None => ShardRouter::new(engines, initial_map()).unwrap(),
    });
    let orchestrator = stress_orchestrator(&router);

    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_secs(300);
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let router = Arc::clone(&router);
            let stop = &stop;
            scope.spawn(move || {
                let request = mixed_request(fx, client);
                let mut last_versions = HashMap::new();
                while !stop.load(Ordering::Relaxed) {
                    let response = router
                        .predict_ite_scatter_versioned(&request.tags, &request.x)
                        .expect("no request may fail during an orchestrated plan");
                    check_response(&request, &response, &mut last_versions);
                }
            });
        }

        // Warm-up traffic so the plan sees real per-shard loads.
        while router.stats().requests < 12 {
            assert!(Instant::now() < deadline, "timed out warming up");
            std::thread::yield_now();
        }

        // Plan determinism: the same (topology, target, loads) triple
        // plans the same byte-identical move order, even under traffic
        // (the plan is pinned off one loads snapshot).
        let loads = router.shard_loads();
        let target = target_map();
        let plan = RebalancePlanner::plan_with_loads(&router.map(), &target, &loads).unwrap();
        let again = RebalancePlanner::plan_with_loads(&router.map(), &target, &loads).unwrap();
        assert_eq!(plan, again, "planning is deterministic");
        assert_eq!(plan.len(), 2);
        // Both moves drain the hot shard 0; order is fixed by the loads.
        assert!(plan.moves.iter().all(|m| m.from == 0));

        let report = orchestrator
            .execute(&plan, |mv| successor_for(fx, mv))
            .expect("a healthy fleet commits the whole plan");
        assert_eq!(report.moves.len(), 2);
        for (mv, reported) in plan.moves.iter().zip(&report.moves) {
            assert_eq!(*mv, reported.mv);
            assert_eq!(reported.destination_version, 2);
            assert_eq!(router.route(mv.domain).unwrap(), mv.to);
        }

        // Let every client observe the final topology before stopping.
        let settled = router.stats().requests + 4 * CLIENTS as u64;
        while router.stats().requests < settled {
            assert!(Instant::now() < deadline, "timed out settling");
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(*router.map(), target_map());
    assert_eq!(router.shard_versions(), vec![1, 2, 2]);
    let stats = router.stats();
    assert_eq!(stats.rejected, 0, "zero errors across the whole plan");
    assert!(
        stats.mean_shards_per_scatter() > 1.0,
        "requests really crossed shards: {stats:?}"
    );
    // The topology now matches the target: planning again is a no-op.
    assert!(orchestrator.plan(&target_map()).unwrap().is_empty());
}

#[test]
fn orchestrated_plan_under_unbatched_scatter_load() {
    run_stress(None);
}

#[test]
fn orchestrated_plan_under_batched_scatter_load() {
    run_stress(Some(BatchConfig {
        max_wait: Duration::from_millis(2),
        ..BatchConfig::default()
    }));
}

/// An injected canary regression — the second move's destination shard
/// failing requests on its published version during the dual-route
/// window — must abort that move, halt the plan with `PlanHalted`, and
/// leave the fleet serving every domain from the valid intermediate
/// topology formed by the committed prefix. A concurrent hostile flood
/// of unroutable requests (client faults, excluded from the verdict)
/// must *not* be what trips it — the fleet-level serve-fault rate stays
/// clean; it is the involved-shard rate that halts the plan.
/// Re-running the plan once the regression clears finishes the job.
#[test]
fn injected_canary_regression_aborts_and_leaves_a_serving_topology() {
    let fx = fixture();
    let engines = vec![fx.e0.clone(), fx.e1.clone(), fx.e2.clone()];
    let router = Arc::new(ShardRouter::new(engines, initial_map()).unwrap());
    let orchestrator = RebalanceOrchestrator::new(
        Arc::clone(&router),
        OrchestratorConfig {
            canary: CanaryConfig {
                // Windows must span many 1-CPU scheduler timeslices, or
                // the flooding thread may never run inside one: release
                // mode serves thousands of requests per second, so a
                // dozen-request window fits in a single timeslice and
                // closes before the injected rejections can land.
                window_requests: 2000,
                // Doubles as the window length in debug mode (requests
                // are ~1000x slower) and keeps the post-halt re-run fast
                // (its windows idle out at max_wait — traffic has
                // stopped by then).
                max_wait: Duration::from_secs(10),
                max_error_rate: 0.2,
                max_p95_ratio: 1e9,
            },
            max_staged: 1,
        },
    );
    let plan = orchestrator.plan(&target_map()).unwrap();
    assert_eq!(plan.len(), 2);
    let first = plan.moves[0];
    let second = plan.moves[1];

    let stop = AtomicBool::new(false);
    let good_errors = AtomicUsize::new(0);
    let outcome = std::thread::scope(|scope| {
        // Two well-behaved clients keep verified traffic flowing.
        for client in 0..2 {
            let router = Arc::clone(&router);
            let (stop, good_errors) = (&stop, &good_errors);
            scope.spawn(move || {
                let request = mixed_request(fx, client);
                let mut last_versions = HashMap::new();
                while !stop.load(Ordering::Relaxed) {
                    match router.predict_ite_scatter_versioned(&request.tags, &request.x) {
                        Ok(response) => check_response(&request, &response, &mut last_versions),
                        Err(_) => {
                            good_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // After the first commit (the moved domain's route flips), two
        // things start at once. A hostile client floods unroutable
        // requests — typed *client* faults, which the canary verdict
        // excludes, so they must be powerless to halt the plan. And the
        // second move's destination shard starts failing requests on
        // its published version (a wrong-width matrix hammered straight
        // at the shard's serving engine) — the genuine serve-side
        // regression the involved-shard canary branch must catch. One
        // thread interleaves both 1:1, so however the 1-CPU scheduler
        // slices the canary window, the client-fault rejections filling
        // it are matched by shard-side rejections landing inside it.
        {
            let router = Arc::clone(&router);
            let stop = &stop;
            scope.spawn(move || {
                let good = fx.stream.domain(0).test.x.slice_rows(0, 1);
                let bad = Matrix::from_vec(1, 1, vec![0.5]);
                while !stop.load(Ordering::Relaxed) && router.route(first.domain) != Ok(first.to) {
                    std::thread::yield_now();
                }
                while !stop.load(Ordering::Relaxed) {
                    let _ = router.predict_ite_scatter(&[999], &good);
                    let _ = router.shard(second.to).unwrap().predict_ite(&bad);
                }
            });
        }

        // Staging the second move's successor happens after the first
        // commit and before the second canary window opens, so holding
        // the provider until the shard-side regression is verifiably in
        // flight makes the injection deterministic — the window cannot
        // fill with healthy traffic and close before any rejection lands.
        let dest_rejections = || -> u64 {
            router
                .shard(second.to)
                .unwrap()
                .version_stats()
                .iter()
                .map(|v| v.rejected)
                .sum()
        };
        let outcome = orchestrator.execute(&plan, |mv| {
            if mv.domain == second.domain {
                let t0 = Instant::now();
                while dest_rejections() < 50 {
                    assert!(
                        t0.elapsed() < Duration::from_secs(120),
                        "timed out waiting for the injected regression to start"
                    );
                    std::thread::yield_now();
                }
            }
            successor_for(fx, mv)
        });
        stop.store(true, Ordering::Relaxed);
        outcome
    });

    match outcome.unwrap_err() {
        ServeError::PlanHalted {
            domain,
            committed,
            remaining,
            reason,
        } => {
            assert_eq!(domain, second.domain);
            assert_eq!((committed, remaining), (1, 1));
            // The *involved-shard* branch tripped — the hostile flood's
            // client faults left the fleet-level serve rate clean.
            assert!(reason.contains("involved-shard error rate"), "{reason}");
        }
        other => panic!("expected PlanHalted, got {other:?}"),
    }

    // The fleet sits on the valid intermediate topology: first move
    // applied, second aborted before publishing anything, no rebalance
    // pending, and every domain still answers bitwise-correctly.
    assert_eq!(router.rebalance_in_progress(), None);
    assert_eq!(router.route(first.domain).unwrap(), first.to);
    assert_eq!(router.route(second.domain).unwrap(), second.from);
    assert_eq!(
        good_errors.load(Ordering::Relaxed),
        0,
        "well-formed clients never failed"
    );
    let request = mixed_request(fx, 3);
    let response = router
        .predict_ite_scatter_versioned(&request.tags, &request.x)
        .expect("the intermediate topology serves all domains");
    check_response(&request, &response, &mut HashMap::new());

    // With the regression gone, re-running the same plan skips the
    // committed move and finishes the remaining one.
    let report = orchestrator
        .execute(&plan, |mv| successor_for(fx, mv))
        .expect("the re-run completes the plan");
    assert_eq!(report.moves.len(), 1);
    assert_eq!(report.moves[0].mv, second);
    assert_eq!(*router.map(), target_map());
}

/// A second plan is refused while one is executing; the running plan is
/// undisturbed and finishes normally.
#[test]
fn concurrent_plan_execution_is_refused_with_plan_in_progress() {
    let fx = fixture();
    // Clones of one engine: answers are version-independent, so this
    // test needs no traffic and no canary window.
    let engines = vec![fx.e0.clone(), fx.e0.clone(), fx.e0.clone()];
    let map = ShardMap::from_pairs(3, &[(0, 0), (1, 0), (2, 0)]).unwrap();
    let target = ShardMap::from_pairs(3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
    let router = Arc::new(ShardRouter::new(engines, map).unwrap());
    let orchestrator = RebalanceOrchestrator::new(
        Arc::clone(&router),
        OrchestratorConfig {
            canary: CanaryConfig {
                window_requests: 0,
                ..CanaryConfig::default()
            },
            max_staged: 1,
        },
    );
    let plan = orchestrator.plan(&target).unwrap();
    assert_eq!(plan.len(), 2);

    // The second move's successor provider blocks until released, pinning
    // the executor inside its plan while the main thread probes it.
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    std::thread::scope(|scope| {
        let (orchestrator_ref, plan_ref) = (&orchestrator, &plan);
        let executor = scope.spawn(move || {
            let mut staged = 0;
            orchestrator_ref.execute(plan_ref, |_| {
                staged += 1;
                if staged == 2 {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                }
                Ok(fx.e0.clone())
            })
        });
        entered_rx.recv().unwrap();
        assert!(orchestrator.is_executing());
        assert_eq!(
            orchestrator
                .execute(&plan, |_| Ok(fx.e0.clone()))
                .unwrap_err(),
            ServeError::PlanInProgress
        );
        release_tx.send(()).unwrap();
        let report = executor.join().unwrap().unwrap();
        assert_eq!(report.moves.len(), 2);
    });
    assert!(!orchestrator.is_executing());
    assert_eq!(*router.map(), target);
}
