//! End-to-end integration tests across crates: data generation → continual
//! training → evaluation, exercising the public facade API.

use cerl::prelude::*;

fn quick_cfg() -> CerlConfig {
    let mut cfg = CerlConfig::quick_test();
    cfg.train.epochs = 15;
    cfg.memory_size = 120;
    cfg
}

fn quick_stream(domains: usize, seed: u64) -> DomainStream {
    let gen = SyntheticGenerator::new(
        SyntheticConfig {
            n_units: 500,
            noise_sd: 0.4,
            ..SyntheticConfig::small()
        },
        seed,
    );
    DomainStream::synthetic(&gen, domains, 0, seed)
}

#[test]
fn cerl_three_domain_pipeline_beats_trivial_everywhere() {
    let stream = quick_stream(3, 101);
    let d_in = stream.domain(0).train.dim();
    let mut cerl = Cerl::new(d_in, quick_cfg(), 101);
    for d in 0..3 {
        let report = cerl.observe(&stream.domain(d).train, &stream.domain(d).val);
        assert_eq!(report.stage, d + 1);
        assert!(report.memory_len <= 120);
    }
    for d in 0..3 {
        let test = &stream.domain(d).test;
        let m = EffectMetrics::on_dataset(test, &cerl.predict_ite(&test.x));
        let trivial = EffectMetrics::on_dataset(test, &vec![0.0; test.n()]);
        assert!(
            m.sqrt_pehe < trivial.sqrt_pehe,
            "domain {d}: {:.3} !< trivial {:.3}",
            m.sqrt_pehe,
            trivial.sqrt_pehe
        );
    }
}

#[test]
fn strategies_and_cerl_share_the_estimator_interface() {
    let stream = quick_stream(2, 102);
    let d_in = stream.domain(0).train.dim();
    let mut lineup: Vec<Box<dyn ContinualEstimator>> = vec![
        Box::new(CfrA::new(d_in, quick_cfg(), 102)),
        Box::new(CfrB::new(d_in, quick_cfg(), 102)),
        Box::new(CfrC::new(d_in, quick_cfg(), 102)),
        Box::new(Cerl::new(d_in, quick_cfg(), 102)),
    ];
    for est in &mut lineup {
        for d in 0..2 {
            est.observe(&stream.domain(d).train, &stream.domain(d).val);
        }
    }
    for est in &lineup {
        for d in 0..2 {
            let m = est.evaluate(&stream.domain(d).test);
            assert!(m.sqrt_pehe.is_finite(), "{} domain {d}", est.name());
            assert!(m.ate_error.is_finite(), "{} domain {d}", est.name());
        }
    }
}

#[test]
fn semisynthetic_news_pipeline_runs_under_all_shifts() {
    let cfg = SemiSyntheticConfig::small();
    let gen = SemiSyntheticGenerator::new(cfg, 103);
    for shift in DomainShift::all() {
        let stream = DomainStream::semisynthetic(&gen, shift, 0, 103);
        assert_eq!(stream.len(), 2);
        let d_in = stream.domain(0).train.dim();
        let mut cerl = Cerl::new(d_in, quick_cfg(), 103);
        for d in 0..2 {
            cerl.observe(&stream.domain(d).train, &stream.domain(d).val);
        }
        let m = EffectMetrics::on_dataset(
            &stream.domain(1).test,
            &cerl.predict_ite(&stream.domain(1).test.x),
        );
        assert!(m.sqrt_pehe.is_finite(), "{}", shift.label());
    }
}

#[test]
fn memory_is_bounded_and_balanced_across_five_domains() {
    let stream = quick_stream(5, 104);
    let d_in = stream.domain(0).train.dim();
    let mut cfg = quick_cfg();
    cfg.memory_size = 80;
    cfg.train.epochs = 6;
    let mut cerl = Cerl::new(d_in, cfg, 104);
    for d in 0..5 {
        let report = cerl.observe(&stream.domain(d).train, &stream.domain(d).val);
        assert!(
            report.memory_len <= 80,
            "stage {}: {}",
            d,
            report.memory_len
        );
    }
    let mem = cerl.memory().expect("memory exists");
    let nt = mem.treated_indices().len() as i64;
    let nc = mem.control_indices().len() as i64;
    assert!((nt - nc).abs() <= 2, "memory unbalanced: {nt} vs {nc}");
}

#[test]
fn predictions_are_deterministic_for_fixed_seed() {
    let stream = quick_stream(2, 105);
    let d_in = stream.domain(0).train.dim();
    let run = || {
        let mut cerl = Cerl::new(d_in, quick_cfg(), 105);
        for d in 0..2 {
            cerl.observe(&stream.domain(d).train, &stream.domain(d).val);
        }
        cerl.predict_ite(&stream.domain(0).test.x)
    };
    assert_eq!(run(), run());
}

#[test]
fn potential_outcome_predictions_are_consistent_with_ite() {
    let stream = quick_stream(1, 106);
    let d_in = stream.domain(0).train.dim();
    let mut cerl = Cerl::new(d_in, quick_cfg(), 106);
    cerl.observe(&stream.domain(0).train, &stream.domain(0).val);
    let x = &stream.domain(0).test.x;
    let (y0, y1) = cerl.predict_potential_outcomes(x);
    let ite = cerl.predict_ite(x);
    for i in 0..x.rows() {
        assert!((ite[i] - (y1[i] - y0[i])).abs() < 1e-10);
    }
}
