//! Batching determinism under load: coalesced results must be bitwise
//! identical to per-request `predict_ite`, including across a mid-stream
//! hot swap (no request may ever observe a torn engine).

use cerl::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn quick_cfg() -> CerlConfig {
    let mut cfg = CerlConfig::quick_test();
    cfg.train.epochs = 6;
    cfg.memory_size = 80;
    cfg
}

fn quick_stream(domains: usize) -> DomainStream {
    let gen = SyntheticGenerator::new(
        SyntheticConfig {
            n_units: 400,
            ..SyntheticConfig::small()
        },
        91,
    );
    DomainStream::synthetic(&gen, domains, 0, 91)
}

fn trained_engine(stream: &DomainStream, stages: usize) -> CerlEngine {
    let mut engine = CerlEngineBuilder::new(quick_cfg())
        .seed(17)
        .build()
        .unwrap();
    for d in 0..stages {
        engine
            .observe(&stream.domain(d).train, &stream.domain(d).val)
            .unwrap();
    }
    engine
}

#[test]
fn coalesced_results_bitwise_match_unbatched_under_load() {
    let stream = quick_stream(1);
    let reference = trained_engine(&stream, 1);
    let serving = Arc::new(ServingEngine::new(reference.clone()));
    let scheduler = Arc::new(BatchScheduler::new(
        Arc::clone(&serving),
        BatchConfig {
            // A generous coalescing window: with several clients
            // resubmitting continuously, batches reliably carry more
            // than one request even on a single CPU.
            max_wait: Duration::from_millis(5),
            ..BatchConfig::default()
        },
    ));

    let x = &stream.domain(0).test.x;
    let clients = 6;
    let per_client = 20;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let scheduler = Arc::clone(&scheduler);
            let x = x.clone();
            let reference = &reference;
            scope.spawn(move || {
                for i in 0..per_client {
                    let start = (c * 7 + i * 3) % (x.rows() - 4);
                    let slice = x.slice_rows(start, start + 4);
                    let (version, batched) = scheduler.predict_ite_versioned(&slice).unwrap();
                    assert_eq!(version, 1);
                    let unbatched = reference.predict_ite(&slice).unwrap();
                    assert_eq!(batched.len(), unbatched.len());
                    for (a, b) in batched.iter().zip(&unbatched) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "client {c} request {i}: batched result diverged"
                        );
                    }
                }
            });
        }
    });

    let stats = scheduler.stats();
    assert_eq!(stats.requests, (clients * per_client) as u64);
    assert_eq!(stats.rejected, 0);
    assert!(
        stats.max_batch_requests >= 2,
        "no coalescing happened: {stats:?}"
    );
    assert!(stats.batches < stats.requests, "every request ran alone");
    assert_eq!(
        stats.per_version_requests,
        vec![(1, (clients * per_client) as u64)]
    );
    assert_eq!(stats.queue_wait.count, stats.requests);
    assert_eq!(stats.end_to_end.count, stats.requests);
}

#[test]
fn no_request_sees_a_torn_engine_across_hot_swap() {
    let stream = quick_stream(2);
    let v1 = trained_engine(&stream, 1);
    let mut v2 = v1.clone();
    v2.observe(&stream.domain(1).train, &stream.domain(1).val)
        .unwrap();

    let serving = Arc::new(ServingEngine::new(v1.clone()));
    let scheduler = Arc::new(BatchScheduler::new(
        Arc::clone(&serving),
        BatchConfig {
            max_wait: Duration::from_millis(2),
            ..BatchConfig::default()
        },
    ));

    let x = &stream.domain(0).test.x;
    let swapped = Arc::new(AtomicBool::new(false));
    let clients = 4;
    let pre_swap_target = 30u64;

    std::thread::scope(|scope| {
        for c in 0..clients {
            let scheduler = Arc::clone(&scheduler);
            let swapped = Arc::clone(&swapped);
            let x = x.clone();
            let (v1, v2) = (&v1, &v2);
            scope.spawn(move || {
                let mut post_swap_responses = 0;
                let mut i = 0usize;
                // Hammer until we have proof this client was served by
                // the successor version a few times.
                while post_swap_responses < 5 {
                    let start = (c * 11 + i * 3) % (x.rows() - 4);
                    let slice = x.slice_rows(start, start + 4);
                    let (version, batched) = scheduler.predict_ite_versioned(&slice).unwrap();
                    // The response must match exactly one published
                    // version, bit for bit — a torn engine would match
                    // neither.
                    let reference = match version {
                        1 => v1.predict_ite(&slice).unwrap(),
                        2 => v2.predict_ite(&slice).unwrap(),
                        other => panic!("impossible version {other}"),
                    };
                    for (a, b) in batched.iter().zip(&reference) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "client {c} request {i} diverged from version {version}"
                        );
                    }
                    if swapped.load(Ordering::Acquire) && version == 2 {
                        post_swap_responses += 1;
                    }
                    i += 1;
                }
            });
        }

        // Let a healthy chunk of traffic land on version 1, then publish
        // the successor mid-stream while the clients keep hammering.
        while scheduler.stats().requests < pre_swap_target {
            std::thread::yield_now();
        }
        let version = serving.swap_engine_warm(v2.clone()).unwrap();
        assert_eq!(version, 2);
        swapped.store(true, Ordering::Release);
    });

    let stats = scheduler.stats();
    assert_eq!(stats.rejected, 0);
    // Both versions actually served traffic around the swap.
    let versions: Vec<u64> = stats.per_version_requests.iter().map(|&(v, _)| v).collect();
    assert_eq!(versions, vec![1, 2], "{stats:?}");
    let v1_count = stats.per_version_requests[0].1;
    assert!(v1_count >= pre_swap_target, "{stats:?}");
    assert_eq!(
        stats.requests,
        stats
            .per_version_requests
            .iter()
            .map(|&(_, c)| c)
            .sum::<u64>()
    );
}

#[test]
fn sharded_fleet_batches_and_swaps_independently_under_load() {
    let stream = quick_stream(3);
    // Shard 0 serves domains {0}, shard 1 serves domains {1, 2}.
    let engines: Vec<CerlEngine> = (0..2)
        .map(|d| {
            let mut e = CerlEngineBuilder::new(quick_cfg())
                .seed(23 + d as u64)
                .build()
                .unwrap();
            e.observe(&stream.domain(d).train, &stream.domain(d).val)
                .unwrap();
            e
        })
        .collect();
    let references = engines.clone();
    let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1), (2, 1)]).unwrap();
    let router = Arc::new(
        ShardRouter::with_batching(
            engines,
            map,
            BatchConfig {
                max_wait: Duration::from_millis(2),
                ..BatchConfig::default()
            },
        )
        .unwrap(),
    );

    // Successor for shard 1 only.
    let mut shard1_successor = references[1].clone();
    shard1_successor
        .observe(&stream.domain(2).train, &stream.domain(2).val)
        .unwrap();

    std::thread::scope(|scope| {
        for c in 0..4u64 {
            let router = Arc::clone(&router);
            let stream = &stream;
            let references = &references;
            let shard1_successor = &shard1_successor;
            scope.spawn(move || {
                for i in 0..15usize {
                    let domain = (c + i as u64) % 3;
                    let x = &stream.domain(domain as usize).test.x;
                    let start = (i * 5) % (x.rows() - 4);
                    let slice = x.slice_rows(start, start + 4);
                    let (version, routed) = router.predict_ite_versioned(domain, &slice).unwrap();
                    let shard = router.route(domain).unwrap();
                    let reference = if shard == 0 || version == 1 {
                        references[shard].predict_ite(&slice).unwrap()
                    } else {
                        shard1_successor.predict_ite(&slice).unwrap()
                    };
                    assert_eq!(routed, reference, "domain {domain} via shard {shard}");
                }
            });
        }
        // Mid-run: retrain + warm-swap shard 1; shard 0 is untouched.
        while router.stats().requests < 10 {
            std::thread::yield_now();
        }
        let version = router
            .swap_shard_engine(1, shard1_successor.clone())
            .unwrap();
        assert_eq!(version, 2);
    });

    assert_eq!(router.shard_versions(), vec![1, 2]);
    let stats = router.stats();
    assert_eq!(stats.requests, 60);
    assert_eq!(stats.rejected, 0);
    // Unknown domains stay typed errors under the batched path too.
    let x = stream.domain(0).test.x.slice_rows(0, 2);
    assert!(matches!(
        router.predict_ite(9, &x),
        Err(ServeError::UnknownDomain { domain: 9 })
    ));
}
