//! Rebalancing under fire: concurrent mixed-domain clients hammer a
//! sharded fleet across a full begin→abort and begin→commit domain move.
//!
//! Every response is checked bitwise against the per-version reference
//! engines, which pins the three dual-route invariants at once:
//!
//! * **zero errors** — no request fails at any point of the window;
//! * **monotone per-shard versions** — a client never observes a shard's
//!   version move backwards;
//! * **no stray serving** — a row is only ever answered by an engine
//!   version of a shard that held the row's domain at the instant the
//!   request pinned the routing map. For the moving domain that means:
//!   bitwise equal to the source shard's engine (old topology) or to the
//!   committed successor (new topology) — never to the destination's
//!   *pre-commit* engine, which did not hold the domain.

use cerl::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const MOVING_DOMAIN: u64 = 1;

fn quick_cfg() -> CerlConfig {
    let mut cfg = CerlConfig::quick_test();
    cfg.train.epochs = 6;
    cfg.memory_size = 80;
    cfg
}

/// Shared fixture: the domain stream, the two shard engines, and the
/// staged successor (the destination's engine retrained on the moving
/// domain) — training once keeps the two stress variants fast.
struct Fixture {
    stream: DomainStream,
    /// Shard 0's engine (serves domains 0 and 1 at the start).
    source: CerlEngine,
    /// Shard 1's engine (serves domain 2 at the start).
    destination: CerlEngine,
    /// Successor staged for shard 1: `destination` retrained on the
    /// moving domain. Distinct weights from both fleet engines, so every
    /// response row identifies the engine that produced it.
    successor: CerlEngine,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            83,
        );
        let stream = DomainStream::synthetic(&gen, 3, 0, 83);
        let mut source = CerlEngineBuilder::new(quick_cfg())
            .seed(31)
            .build()
            .unwrap();
        source
            .observe(&stream.domain(0).train, &stream.domain(0).val)
            .unwrap();
        let mut destination = CerlEngineBuilder::new(quick_cfg())
            .seed(32)
            .build()
            .unwrap();
        destination
            .observe(&stream.domain(2).train, &stream.domain(2).val)
            .unwrap();
        let mut successor = destination.clone();
        successor
            .observe(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        Fixture {
            stream,
            source,
            destination,
            successor,
        }
    })
}

/// A mixed-domain request interleaving rows of all three domains, plus
/// the bitwise reference answer of each engine for those exact rows.
struct MixedRequest {
    tags: Vec<u64>,
    x: Matrix,
    by_source: Vec<f64>,
    by_destination: Vec<f64>,
    by_successor: Vec<f64>,
}

fn mixed_request(fx: &Fixture, salt: usize) -> MixedRequest {
    let mut tags = Vec::new();
    let mut rows = Vec::new();
    for i in 0..9usize {
        let domain = ((salt + i) % 3) as u64;
        let x = &fx.stream.domain(domain as usize).test.x;
        let row = (salt * 7 + i * 3) % x.rows();
        tags.push(domain);
        rows.push(x.slice_rows(row, row + 1));
    }
    let mut data = Vec::new();
    for row in &rows {
        data.extend_from_slice(row.as_slice());
    }
    let x = Matrix::from_vec(tags.len(), rows[0].cols(), data);
    let by_source = fx.source.predict_ite(&x).unwrap();
    let by_destination = fx.destination.predict_ite(&x).unwrap();
    let by_successor = fx.successor.predict_ite(&x).unwrap();
    MixedRequest {
        tags,
        x,
        by_source,
        by_destination,
        by_successor,
    }
}

/// Check one scatter response against the per-version references; panics
/// (failing the test) on any torn or stray row.
fn check_response(
    request: &MixedRequest,
    response: &ScatterResponse,
    last_versions: &mut HashMap<usize, u64>,
) {
    for &(shard, version) in &response.shard_versions {
        let last = last_versions.entry(shard).or_insert(0);
        assert!(
            version >= *last,
            "shard {shard} version went backwards: {version} after {last}"
        );
        *last = version;
    }
    let shard1_version = response
        .shard_versions
        .iter()
        .find(|&&(shard, _)| shard == 1)
        .map(|&(_, version)| version);
    for (i, value) in response.ite.iter().enumerate() {
        let bits = value.to_bits();
        match request.tags[i] {
            // Shard 0 never swaps: its domain is always the source's bits.
            0 => assert_eq!(
                bits,
                request.by_source[i].to_bits(),
                "row {i}: domain 0 diverged from shard 0's only version"
            ),
            // Shard 1's row must match the exact version the response
            // reports for shard 1 — a torn engine matches neither.
            2 => {
                let expected = match shard1_version {
                    Some(1) => request.by_destination[i].to_bits(),
                    Some(2) => request.by_successor[i].to_bits(),
                    other => panic!("domain 2 row answered without a shard-1 pin ({other:?})"),
                };
                assert_eq!(bits, expected, "row {i}: domain 2 diverged");
            }
            // The moving domain: legitimately answered by the source
            // shard (old topology) or the committed successor (new
            // topology). The destination's pre-commit engine never held
            // the domain, so its bits must never appear.
            MOVING_DOMAIN => {
                let by_source = bits == request.by_source[i].to_bits();
                let by_successor = bits == request.by_successor[i].to_bits();
                assert!(
                    by_source || (by_successor && shard1_version == Some(2)),
                    "row {i}: moving domain answered by a shard that does not hold it \
                     (source={by_source}, successor={by_successor}, shard1={shard1_version:?})"
                );
            }
            other => unreachable!("unexpected tag {other}"),
        }
    }
}

fn run_stress(batch: Option<BatchConfig>) {
    let fx = fixture();
    let map = ShardMap::from_pairs(2, &[(0, 0), (MOVING_DOMAIN, 0), (2, 1)]).unwrap();
    let engines = vec![fx.source.clone(), fx.destination.clone()];
    let router = Arc::new(match batch {
        Some(cfg) => ShardRouter::with_batching(engines, map, cfg).unwrap(),
        None => ShardRouter::new(engines, map).unwrap(),
    });

    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_secs(300);
    let wait_for = |predicate: &dyn Fn() -> bool, what: &str| {
        while !predicate() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::yield_now();
        }
    };

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let router = Arc::clone(&router);
            let stop = &stop;
            scope.spawn(move || {
                let request = mixed_request(fx, client);
                let mut last_versions = HashMap::new();
                while !stop.load(Ordering::Relaxed) {
                    let response = router
                        .predict_ite_scatter_versioned(&request.tags, &request.x)
                        .expect("no request may fail during a rebalance");
                    check_response(&request, &response, &mut last_versions);
                }
            });
        }

        let stats = || router.stats();
        // Phase 1: plain traffic on the original topology.
        wait_for(&|| stats().requests >= 12, "warm-up traffic");

        // Phase 2: begin → abort. The window opens and closes with the
        // map untouched; clients keep verifying that the moving domain is
        // answered by the source shard throughout.
        router
            .begin_rebalance(MOVING_DOMAIN, 1, fx.successor.clone())
            .unwrap();
        let mid_window = stats().requests + 10;
        wait_for(
            &|| stats().requests >= mid_window,
            "traffic inside the abort window",
        );
        router.abort_rebalance().unwrap();
        assert_eq!(router.route(MOVING_DOMAIN).unwrap(), 0);
        assert_eq!(router.shard_versions(), vec![1, 1]);
        let post_abort = stats().requests + 10;
        wait_for(
            &|| stats().requests >= post_abort,
            "traffic after the abort",
        );

        // Phase 3: begin → commit under the same load.
        router
            .begin_rebalance(MOVING_DOMAIN, 1, fx.successor.clone())
            .unwrap();
        let in_window = stats().requests + 10;
        wait_for(
            &|| stats().requests >= in_window,
            "traffic inside the commit window",
        );
        let version = router.commit_rebalance().unwrap();
        assert_eq!(version, 2);

        // Let every client observe the new topology before stopping:
        // version 2 answers show up in the fleet's per-version table.
        wait_for(
            &|| {
                stats()
                    .per_version_requests
                    .iter()
                    .any(|&(v, count)| v == 2 && count >= 4 * CLIENTS as u64)
            },
            "post-commit traffic on the successor version",
        );
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(router.route(MOVING_DOMAIN).unwrap(), 1);
    assert_eq!(router.shard_versions(), vec![1, 2]);
    let stats = router.stats();
    assert_eq!(stats.rejected, 0, "zero errors across the whole stress");
    assert_eq!(stats.scatter_requests, stats.requests);
    assert!(
        stats.mean_shards_per_scatter() > 1.0,
        "requests really crossed shards: {stats:?}"
    );
}

#[test]
fn rebalance_under_unbatched_scatter_load() {
    run_stress(None);
}

#[test]
fn rebalance_under_batched_scatter_load() {
    run_stress(Some(BatchConfig {
        max_wait: Duration::from_millis(2),
        ..BatchConfig::default()
    }));
}
