//! Property-based tests (proptest) on cross-crate invariants.

use cerl::math::correlation::{hub_first_column, hub_toeplitz, toeplitz};
use cerl::math::stats::quantile;
use cerl::math::Matrix;
use cerl::nn::{Graph, ParamStore};
use cerl::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One trained engine shared by the snapshot properties (training inside
/// every proptest case would dominate the suite's runtime), plus its
/// restored-from-bytes replica and covariate dimension.
fn snapshot_fixture() -> &'static (CerlEngine, CerlEngine, usize) {
    static FIXTURE: OnceLock<(CerlEngine, CerlEngine, usize)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            77,
        );
        let stream = DomainStream::synthetic(&gen, 2, 0, 77);
        let d_in = stream.domain(0).train.dim();
        let mut cfg = CerlConfig::quick_test();
        cfg.train.epochs = 6;
        cfg.memory_size = 80;
        let mut engine = CerlEngineBuilder::new(cfg)
            .seed(77)
            .build()
            .expect("valid config");
        for d in 0..2 {
            engine
                .observe(&stream.domain(d).train, &stream.domain(d).val)
                .expect("well-formed synthetic domains");
        }
        let bytes = engine.save_bytes().expect("trained engine saves");
        let restored = CerlEngine::load_bytes(&bytes).expect("own bytes load");
        (engine, restored, d_in)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- matrices -----------------------------------------------------

    #[test]
    fn transpose_is_involutive(rows in 1usize..12, cols in 1usize..12, seed in any::<u64>()) {
        let mut state = seed;
        let m = Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        });
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_addition(n in 1usize..8, seed in any::<u64>()) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        let a = Matrix::from_fn(n, n, |_, _| next());
        let b = Matrix::from_fn(n, n, |_, _| next());
        let c = Matrix::from_fn(n, n, |_, _| next());
        let left = cerl::math::matmul(&a, &b.add(&c));
        let right = cerl::math::matmul(&a, &b).add(&cerl::math::matmul(&a, &c));
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    // ---- correlation construction --------------------------------------

    #[test]
    fn hub_column_is_monotone_and_bounded(
        d in 2usize..40,
        rmax in 0.3f64..0.9,
        gap in 0.0f64..0.25,
        gamma in 0.2f64..3.0,
    ) {
        let rmin = (rmax - gap).max(0.01);
        let col = hub_first_column(d, rmax, rmin, gamma);
        prop_assert_eq!(col.len(), d);
        prop_assert_eq!(col[0], 1.0);
        for w in col[1..].windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12, "not monotone: {:?}", col);
        }
        for &v in &col[1..] {
            prop_assert!(v >= rmin - 1e-12 && v <= rmax + 1e-12);
        }
    }

    #[test]
    fn toeplitz_matrices_are_symmetric_with_constant_diagonals(
        d in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mut state = seed;
        let col: Vec<f64> = (0..d).map(|i| {
            if i == 0 { 1.0 } else {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64 / (1u64 << 32) as f64) * 0.5
            }
        }).collect();
        let m = toeplitz(&col);
        for i in 0..d {
            for j in 0..d {
                prop_assert_eq!(m[(i, j)], m[(j, i)]);
                prop_assert_eq!(m[(i, j)], col[i.abs_diff(j)]);
            }
        }
    }

    #[test]
    fn hub_toeplitz_stays_in_correlation_range(
        d in 2usize..25,
        rmax in 0.2f64..0.8,
    ) {
        let m = hub_toeplitz(d, rmax, 0.1, 1.0);
        for i in 0..d {
            prop_assert_eq!(m[(i, i)], 1.0);
            for j in 0..d {
                prop_assert!(m[(i, j)].abs() <= 1.0 + 1e-12);
            }
        }
    }

    // ---- statistics ----------------------------------------------------

    #[test]
    fn quantile_brackets_data(mut xs in prop::collection::vec(-1e3f64..1e3, 1..60), q in 0.0f64..1.0) {
        let v = quantile(&xs, q);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(v >= xs[0] - 1e-9 && v <= xs[xs.len() - 1] + 1e-9);
    }

    // ---- metrics ---------------------------------------------------------

    #[test]
    fn pehe_is_a_metric_like_quantity(
        ite in prop::collection::vec(-10.0f64..10.0, 1..50),
        offset in -5.0f64..5.0,
    ) {
        let shifted: Vec<f64> = ite.iter().map(|v| v + offset).collect();
        let m = EffectMetrics::from_ite(&ite, &shifted);
        // Constant offset: PEHE equals |offset| exactly, as does ATE error.
        prop_assert!((m.sqrt_pehe - offset.abs()).abs() < 1e-9);
        prop_assert!((m.ate_error - offset.abs()).abs() < 1e-9);
        // Self-comparison is exactly zero.
        let z = EffectMetrics::from_ite(&ite, &ite);
        prop_assert_eq!(z.sqrt_pehe, 0.0);
        prop_assert_eq!(z.ate_error, 0.0);
    }

    // ---- autodiff -------------------------------------------------------

    #[test]
    fn graph_linear_identities_hold(n in 1usize..6, seed in any::<u64>()) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        let a_val = Matrix::from_fn(n, n, |_, _| next());
        let mut g = Graph::new();
        let a = g.input(a_val.clone());
        let double_via_add = g.add(a, a);
        let double_via_scale = g.scale(a, 2.0);
        prop_assert!(g.value(double_via_add).approx_eq(g.value(double_via_scale), 1e-12));

        // sum(a + a) == 2 sum(a)
        let s1 = g.sum(double_via_add);
        prop_assert!((g.scalar(s1) - 2.0 * a_val.sum()).abs() < 1e-9);
    }

    #[test]
    fn gradient_of_sum_is_ones(rows in 1usize..6, cols in 1usize..6) {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::filled(rows, cols, 0.5));
        let mut g = Graph::new();
        let wp = g.param(&store, w);
        let loss = g.sum(wp);
        let grads = g.backward(loss);
        let gw = grads.param_grad(w).unwrap();
        prop_assert!(gw.approx_eq(&Matrix::ones(rows, cols), 1e-12));
    }

    // ---- model snapshots --------------------------------------------------

    #[test]
    fn snapshot_roundtrip_predicts_bitwise_identically_on_random_covariates(
        rows in 1usize..40,
        seed in any::<u64>(),
        scale in 0.1f64..10.0,
    ) {
        let (engine, restored, d_in) = snapshot_fixture();
        let mut state = seed;
        let x = Matrix::from_fn(rows, *d_in, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * scale
        });
        let a = engine.predict_ite(&x).expect("engine predicts");
        let b = restored.predict_ite(&x).expect("restored predicts");
        prop_assert_eq!(a.len(), b.len());
        for (va, vb) in a.iter().zip(&b) {
            prop_assert_eq!(va.to_bits(), vb.to_bits());
        }
        // Potential outcomes and embeddings round-trip identically too.
        let (a0, a1) = engine.predict_potential_outcomes(&x).expect("engine predicts");
        let (b0, b1) = restored.predict_potential_outcomes(&x).expect("restored predicts");
        prop_assert_eq!(a0, b0);
        prop_assert_eq!(a1, b1);
    }

    #[test]
    fn snapshot_rejects_every_foreign_format_version(bump in 1u32..1000) {
        let (engine, _, _) = snapshot_fixture();
        let mut snapshot = engine.snapshot().expect("trained engine snapshots");
        snapshot.format_version = SNAPSHOT_FORMAT_VERSION.wrapping_add(bump);
        let bytes = snapshot.to_bytes().expect("serializes");
        match CerlEngine::load_bytes(&bytes) {
            Err(CerlError::Snapshot(SnapshotError::UnsupportedVersion { found, supported })) => {
                prop_assert_eq!(found, SNAPSHOT_FORMAT_VERSION.wrapping_add(bump));
                prop_assert_eq!(supported, SNAPSHOT_FORMAT_VERSION);
            }
            other => prop_assert!(false, "expected UnsupportedVersion, got {:?}", other.map(|_| ())),
        }
    }

    // ---- dataset handling -------------------------------------------------

    // ---- latency histogram ------------------------------------------------

    #[test]
    fn histogram_quantiles_are_ordered_and_land_in_their_buckets(
        samples in prop::collection::vec(0u64..30_000_000_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let h = LatencyHistogram::new();
        for &nanos in &samples {
            h.record(Duration::from_nanos(nanos));
        }
        prop_assert_eq!(h.count(), samples.len() as u64);

        // Quantiles are monotone in q...
        let s = h.snapshot();
        prop_assert!(s.p50 <= s.p95, "p50 {:?} > p95 {:?}", s.p50, s.p95);
        prop_assert!(s.p95 <= s.p99, "p95 {:?} > p99 {:?}", s.p95, s.p99);

        // ...and each reported quantile lies inside the bounds of the
        // bucket its target-rank sample landed in (the geometric-midpoint
        // representative never escapes its bucket).
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let total = sorted.len() as u64;
        for q in [q, 0.50, 0.95, 0.99, 1.0] {
            let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
            let rank_sample = sorted[(target - 1) as usize];
            let bucket = LatencyHistogram::bucket_for(rank_sample);
            let (lower, upper) = LatencyHistogram::bucket_bounds(bucket);
            let reported = h.quantile(q).expect("histogram is non-empty");
            prop_assert!(
                reported >= lower && reported <= upper,
                "q={q}: reported {reported:?} outside bucket {bucket} bounds [{lower:?}, {upper:?}] (rank sample {rank_sample} ns)"
            );
        }
    }

    #[test]
    fn dataset_select_preserves_alignment(n in 4usize..40, seed in any::<u64>()) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let x = Matrix::from_fn(n, 3, |_, _| next());
        let t: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let y: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ds = CausalDataset::new(x, t.clone(), y.clone(), y.clone(), y.clone());
        let idx: Vec<usize> = (0..n).rev().collect();
        let sel = ds.select(&idx);
        for (k, &i) in idx.iter().enumerate() {
            prop_assert_eq!(sel.y[k], y[i]);
            prop_assert_eq!(sel.t[k], t[i]);
        }
        prop_assert_eq!(sel.true_ate(), ds.true_ate());
    }
}

// The scatter-gather contract gets its own, larger case budget: the
// cross-shard merge path must hold for *arbitrary* topologies and row
// interleavings, and the CI release job runs this suite with optimized
// merge code (`cargo test --release -q --test property_based`).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- cross-shard scatter-gather ---------------------------------------

    /// For an arbitrary domain→shard map and an arbitrary per-row domain
    /// interleaving, a fleet of shards all holding the same model answers
    /// a mixed-domain scatter request bitwise identically to one
    /// unsharded engine's `predict_ite_batch` over the same rows.
    #[test]
    fn scatter_gather_is_bitwise_identical_to_an_unsharded_engine(
        shards in 1usize..4,
        rows in 1usize..48,
        map_seed in any::<u64>(),
        tag_seed in any::<u64>(),
        scale in 0.1f64..10.0,
    ) {
        let (engine, _, d_in) = snapshot_fixture();
        let mut state = map_seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };

        // Arbitrary topology: 1..=6 domains with arbitrary (sparse,
        // non-contiguous, strictly increasing — hence unique) ids, each
        // assigned to an arbitrary shard.
        let domain_count = 1 + (next() % 6) as usize;
        let mut domain_id = next() % 3;
        let pairs: Vec<(u64, usize)> = (0..domain_count)
            .map(|_| {
                let pair = (domain_id, next() as usize % shards);
                domain_id += 1 + next() % 4;
                pair
            })
            .collect();
        let map = ShardMap::from_pairs(shards, &pairs).expect("generated pairs are in range");
        let router = ShardRouter::new(
            (0..shards).map(|_| engine.clone()).collect(),
            map.clone(),
        )
        .expect("map and fleet sizes agree");

        // Arbitrary rows, each tagged with an arbitrary mapped domain.
        let mut tag_state = tag_seed;
        let mut next_tag = move || {
            tag_state = tag_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            tag_state >> 33
        };
        let tags: Vec<u64> = (0..rows)
            .map(|_| map.assignments()[next_tag() as usize % map.len()].domain)
            .collect();
        let mut x_state = tag_seed ^ map_seed;
        let x = Matrix::from_fn(rows, *d_in, |_, _| {
            x_state = x_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((x_state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * scale
        });

        let response = router
            .predict_ite_scatter_versioned(&tags, &x)
            .expect("every tag is mapped");
        let expected: Vec<f64> = engine
            .predict_ite_batch(std::slice::from_ref(&x))
            .expect("engine serves the same rows")
            .into_iter()
            .flatten()
            .collect();
        prop_assert_eq!(response.ite.len(), expected.len());
        for (i, (a, b)) in response.ite.iter().zip(&expected).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "row {} (domain {}) diverged from the unsharded engine", i, tags[i]
            );
        }

        // The fan-out shape is exactly the set of shards the tags hit,
        // ascending, each pinned at version 1 (nothing ever swapped).
        let mut hit: Vec<usize> = tags
            .iter()
            .map(|&d| map.shard_for(d).expect("tag was drawn from the map"))
            .collect();
        hit.sort_unstable();
        hit.dedup();
        let expected_versions: Vec<(usize, u64)> = hit.into_iter().map(|s| (s, 1)).collect();
        prop_assert_eq!(response.shard_versions, expected_versions);
    }

    // ---- replicated domains: the policy contract --------------------------

    /// For an arbitrary domain→replica-set map (arbitrary non-empty
    /// replica subsets, including single-replica domains mixed in) and
    /// **any** route policy — the shipped three plus a deliberately
    /// wrong version pin — a fleet of identical shards answers both
    /// direct and mixed-domain requests row-for-row bitwise identically
    /// to one unsharded reference engine. This is the [`RoutePolicy`]
    /// contract: a policy chooses placement, never results.
    #[test]
    fn any_replica_map_under_any_policy_is_bitwise_identical_to_the_reference(
        shards in 2usize..4,
        rows in 1usize..32,
        map_seed in any::<u64>(),
        tag_seed in any::<u64>(),
        policy_idx in 0usize..4,
        scale in 0.1f64..10.0,
    ) {
        let (engine, _, d_in) = snapshot_fixture();
        let mut state = map_seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };

        // Arbitrary topology: each domain gets an arbitrary non-empty
        // subset of the fleet as its replica-set (bitmask draw).
        let domain_count = 1 + (next() % 5) as usize;
        let mut domain_id = next() % 3;
        let entries: Vec<(u64, Vec<usize>)> = (0..domain_count)
            .map(|_| {
                let mask = 1 + next() as usize % ((1 << shards) - 1);
                let replicas: Vec<usize> =
                    (0..shards).filter(|s| mask >> s & 1 == 1).collect();
                let entry = (domain_id, replicas);
                domain_id += 1 + next() % 4;
                entry
            })
            .collect();
        let map = ShardMap::from_replicas(shards, &entries)
            .expect("generated replica ids are in range");
        let router = ShardRouter::new(
            (0..shards).map(|_| engine.clone()).collect(),
            map.clone(),
        )
        .expect("map and fleet sizes agree");
        let policy: Arc<dyn RoutePolicy> = match policy_idx {
            0 => Arc::new(LeastLoaded),
            1 => Arc::new(RoundRobin::new()),
            2 => Arc::new(VersionPinned::new(1)),
            // A pin no replica publishes must degrade to the primary,
            // not change results or fail requests.
            _ => Arc::new(VersionPinned::new(999)),
        };
        router.set_route_policy(Arc::clone(&policy));

        // Arbitrary rows tagged with arbitrary mapped domains.
        let mut tag_state = tag_seed;
        let mut next_tag = move || {
            tag_state = tag_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            tag_state >> 33
        };
        let tags: Vec<u64> = (0..rows)
            .map(|_| map.assignments()[next_tag() as usize % map.len()].domain)
            .collect();
        let mut x_state = tag_seed ^ map_seed;
        let x = Matrix::from_fn(rows, *d_in, |_, _| {
            x_state = x_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((x_state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * scale
        });
        let expected = engine.predict_ite(&x).expect("reference serves the rows");

        // Mixed-domain scatter: bitwise the reference, policy or not.
        let response = router
            .predict_ite_scatter_versioned(&tags, &x)
            .expect("every tag is mapped");
        for (i, (a, b)) in response.ite.iter().zip(&expected).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "row {} (domain {}, policy {}) diverged from the reference",
                i, tags[i], policy.name()
            );
        }
        // Every placement the policy made stayed inside its domain's
        // replica-set; the trail exists iff a replicated domain took part.
        for &(domain, shard) in &response.placements {
            prop_assert!(
                map.replicas_for(domain).expect("placed domain is mapped").contains(shard),
                "policy {} placed domain {} outside its replica-set (shard {})",
                policy.name(), domain, shard
            );
        }
        let touched_replicated = tags
            .iter()
            .any(|d| map.replicas_for(*d).expect("tag was drawn from the map").len() > 1);
        prop_assert_eq!(!response.placements.is_empty(), touched_replicated);

        // Direct single-domain serving under the same policy: also bitwise.
        let domain = tags[0];
        let direct = router.predict_ite(domain, &x).expect("domain is mapped");
        for (a, b) in direct.iter().zip(&expected) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
