//! Concurrency contract of [`ServingEngine`]: reader threads hammering
//! predictions across a mid-flight snapshot swap must observe no torn
//! reads, monotone version numbers, and bitwise-stable predictions per
//! engine version — and parallel inference must be deterministic in the
//! thread count.

use cerl::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn quick_cfg() -> CerlConfig {
    let mut cfg = CerlConfig::quick_test();
    cfg.train.epochs = 5;
    cfg.memory_size = 80;
    cfg
}

fn quick_stream(domains: usize) -> DomainStream {
    let gen = SyntheticGenerator::new(
        SyntheticConfig {
            n_units: 300,
            ..SyntheticConfig::small()
        },
        61,
    );
    DomainStream::synthetic(&gen, domains, 0, 61)
}

fn stage1_engine(stream: &DomainStream) -> CerlEngine {
    let mut engine = CerlEngineBuilder::new(quick_cfg()).seed(9).build().unwrap();
    engine
        .observe(&stream.domain(0).train, &stream.domain(0).val)
        .unwrap();
    engine
}

#[test]
fn parallel_prediction_deterministic_in_thread_count() {
    let stream = quick_stream(1);
    let serving = ServingEngine::new(stage1_engine(&stream));

    // A request large enough to span many chunks.
    let base = &stream.domain(0).test.x;
    let idx: Vec<usize> = (0..2000).map(|i| i % base.rows()).collect();
    let request = base.select_rows(&idx);

    let single = serving.predict_ite(&request).unwrap();
    for threads in [0, 1, 2, 3, 4, 8] {
        let parallel = serving.predict_ite_parallel(&request, threads).unwrap();
        assert_eq!(parallel.len(), single.len());
        for (i, (a, b)) in parallel.iter().zip(&single).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "row {i} differs at threads={threads}"
            );
        }
    }
}

#[test]
fn readers_across_swap_see_no_torn_reads_and_monotone_versions() {
    let stream = quick_stream(2);
    let engine = stage1_engine(&stream);
    let x = stream.domain(0).test.x.clone();

    // Expected bitwise outputs per version. Version 2's are precomputed on
    // an independent replica: `observe` is deterministic from (state,
    // data), so the successor trained inside `observe_and_swap` must
    // predict identically.
    let expected_v1 = engine.predict_ite(&x).unwrap();
    let expected_v2 = {
        let mut replica = engine.clone();
        replica
            .observe(&stream.domain(1).train, &stream.domain(1).val)
            .unwrap();
        replica.predict_ite(&x).unwrap()
    };
    assert_ne!(expected_v1, expected_v2, "stage-2 model should differ");

    let serving = Arc::new(ServingEngine::new(engine));
    let reads = AtomicUsize::new(0);
    let torn = AtomicUsize::new(0);
    let regressions = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut last_version = 0u64;
                loop {
                    match serving.predict_ite_versioned(&x) {
                        Ok((version, ite)) => {
                            reads.fetch_add(1, Ordering::Relaxed);
                            if version < last_version {
                                regressions.fetch_add(1, Ordering::Relaxed);
                            }
                            last_version = version;
                            let expected = match version {
                                1 => &expected_v1,
                                2 => &expected_v2,
                                _ => {
                                    torn.fetch_add(1, Ordering::Relaxed);
                                    continue;
                                }
                            };
                            if &ite != expected {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Keep hammering until the swap has been published and
                    // this reader has seen it (or the trainer bailed).
                    if last_version >= 2 || stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
            });
        }

        let outcome = serving.observe_and_swap(&stream.domain(1).train, &stream.domain(1).val);
        stop.store(true, Ordering::Relaxed);
        let (report, version) = outcome.unwrap();
        assert_eq!(report.stage, 2);
        assert_eq!(version, 2);
    });

    assert_eq!(errors.load(Ordering::Relaxed), 0, "zero reader errors");
    assert_eq!(torn.load(Ordering::Relaxed), 0, "no torn reads");
    assert_eq!(
        regressions.load(Ordering::Relaxed),
        0,
        "versions are monotone per reader"
    );
    let total_reads = reads.load(Ordering::Relaxed);
    assert!(total_reads >= 4, "every reader completed at least one read");

    let stats = serving.stats();
    assert_eq!(stats.requests_served, total_reads as u64);
    assert_eq!(stats.rows_predicted, (total_reads * x.rows()) as u64);
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.rejected_requests, 0);
}

#[test]
fn pinned_handles_survive_swaps_and_old_versions_stay_bitwise_stable() {
    let stream = quick_stream(2);
    let serving = ServingEngine::new(stage1_engine(&stream));
    let x = &stream.domain(0).test.x;

    let pinned = serving.current();
    let before = pinned.engine().predict_ite(x).unwrap();

    serving
        .observe_and_swap(&stream.domain(1).train, &stream.domain(1).val)
        .unwrap();

    // The pre-swap handle still serves version 1, bit for bit.
    assert_eq!(pinned.version(), 1);
    let after = pinned.engine().predict_ite(x).unwrap();
    for (a, b) in before.iter().zip(&after) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(serving.version(), 2);
}

#[test]
fn malformed_requests_are_rejected_not_fatal_under_concurrency() {
    let stream = quick_stream(1);
    let serving = Arc::new(ServingEngine::new(stage1_engine(&stream)));
    let x = stream.domain(0).test.x.clone();
    let bad = Matrix::zeros(4, x.cols() + 3);

    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                for _ in 0..20 {
                    assert!(matches!(
                        serving.predict_ite(&bad),
                        Err(CerlError::DimensionMismatch { .. })
                    ));
                    assert!(serving.predict_ite(&x).is_ok());
                }
            });
        }
    });

    let stats = serving.stats();
    assert_eq!(stats.rejected_requests, 60);
    assert_eq!(stats.requests_served, 60);
    assert_eq!(stats.rows_predicted, 60 * x.rows() as u64);
}
