//! The replica lifecycle under fire: a hot domain is read-scaled from
//! one replica to three and back down to one — `add_replica` →
//! `add_replica` → `drain_replica` → `remove_replica` (twice) — while
//! concurrent mixed-domain scatter clients hammer the fleet and the
//! route policy is swapped mid-traffic.
//!
//! Every response is checked row-for-row, which pins the replica-era
//! serving invariants:
//!
//! * **zero serve faults** — no request fails at any point of the
//!   lifecycle: every verb is a canary-watched window plus one atomic
//!   map flip, and requests that pinned the pre-flip map finish against
//!   a shard that still holds their rows' domains;
//! * **bitwise-identical rows throughout** — the replicas hold the same
//!   model (a replica is restored from another replica's snapshot, here
//!   literal clones), so whichever replica a policy picks, and whatever
//!   the topology mid-verb, every row must match the single-engine
//!   reference bit for bit. Policy swaps mid-traffic are covered by the
//!   same assertion: placement may change, results may not;
//! * **monotone per-replica versions** — a shard's reported engine
//!   version never goes backwards across the whole lifecycle (adds
//!   publish a successor and bump it; drains and removals leave it
//!   alone);
//! * **honest attribution** — placements only ever name shards that
//!   legitimately hold the row's domain, and the per-domain counters
//!   single out the hot domain by row share.

use cerl::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const DOMAINS: usize = 3;

fn quick_cfg() -> CerlConfig {
    let mut cfg = CerlConfig::quick_test();
    cfg.train.epochs = 6;
    cfg.memory_size = 80;
    cfg
}

/// Shared fixture: one engine observed on all three domains. The fleet
/// runs clones of it, which is exactly the replica contract — a replica
/// added for read scaling restores the same snapshot the existing
/// replicas serve, so its answers are bitwise theirs.
struct Fixture {
    stream: DomainStream,
    base: CerlEngine,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let gen = SyntheticGenerator::new(
            SyntheticConfig {
                n_units: 400,
                ..SyntheticConfig::small()
            },
            97,
        );
        let stream = DomainStream::synthetic(&gen, DOMAINS, 0, 97);
        let mut base = CerlEngineBuilder::new(quick_cfg())
            .seed(61)
            .build()
            .unwrap();
        for d in 0..DOMAINS {
            base.observe(&stream.domain(d).train, &stream.domain(d).val)
                .unwrap();
        }
        Fixture { stream, base }
    })
}

fn initial_map() -> ShardMap {
    ShardMap::from_pairs(3, &[(0, 0), (1, 1), (2, 2)]).unwrap()
}

/// One client's fixed mixed-domain request: domain 0 is the hot one
/// (two thirds of the rows), domains 1 and 2 ride along so every
/// request scatters across shards.
struct MixedRequest {
    tags: Vec<u64>,
    x: Matrix,
    reference: Vec<f64>,
}

fn mixed_request(fx: &Fixture, salt: usize) -> MixedRequest {
    const PATTERN: [u64; 6] = [0, 0, 1, 0, 0, 2];
    let mut tags = Vec::new();
    let mut data = Vec::new();
    let mut cols = 0;
    for i in 0..12usize {
        let domain = PATTERN[(salt + i) % PATTERN.len()];
        let x = &fx.stream.domain(domain as usize).test.x;
        let row = (salt * 7 + i * 3) % x.rows();
        let slice = x.slice_rows(row, row + 1);
        cols = slice.cols();
        data.extend_from_slice(slice.as_slice());
        tags.push(domain);
    }
    let x = Matrix::from_vec(tags.len(), cols, data);
    let reference = fx.base.predict_ite(&x).unwrap();
    MixedRequest { tags, x, reference }
}

/// Check one scatter response: rows bitwise against the single-engine
/// reference, versions monotone per shard, placements only on shards
/// that legitimately hold the placed domain.
fn check_response(
    request: &MixedRequest,
    response: &ScatterResponse,
    last_versions: &mut HashMap<usize, u64>,
) {
    for &(shard, version) in &response.shard_versions {
        let last = last_versions.entry(shard).or_insert(0);
        assert!(
            version >= *last,
            "shard {shard} version went backwards: {version} after {last}"
        );
        *last = version;
    }
    for (i, value) in response.ite.iter().enumerate() {
        assert_eq!(
            value.to_bits(),
            request.reference[i].to_bits(),
            "row {i} (domain {}): a replica diverged from the reference",
            request.tags[i]
        );
    }
    for &(domain, shard) in &response.placements {
        // Domain 0's replica-set only ever spans shards {0, 1, 2};
        // domains 1 and 2 never replicate off their home shard.
        let legitimate = match domain {
            0 => shard < 3,
            1 | 2 => shard == domain as usize,
            other => panic!("placement names unknown domain {other}"),
        };
        assert!(
            legitimate,
            "domain {domain} placed on shard {shard}, which never held it"
        );
    }
}

fn run_stress(batch: Option<BatchConfig>) {
    let fx = fixture();
    let engines = vec![fx.base.clone(), fx.base.clone(), fx.base.clone()];
    let router = Arc::new(match batch {
        Some(cfg) => ShardRouter::with_batching(engines, initial_map(), cfg).unwrap(),
        None => ShardRouter::new(engines, initial_map()).unwrap(),
    });
    let ring = TraceRing::new(8, 1024);
    let orchestrator = RebalanceOrchestrator::new(
        Arc::clone(&router),
        OrchestratorConfig {
            canary: CanaryConfig {
                window_requests: 8,
                max_wait: Duration::from_secs(60),
                max_error_rate: 0.05,
                // Latency on a loaded CI box is too noisy to gate a
                // correctness stress on; the verdict logic has its own
                // deterministic unit tests.
                max_p95_ratio: 1e9,
            },
            max_staged: 1,
        },
    )
    .with_obs(Arc::clone(&ring));

    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_secs(300);
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let router = Arc::clone(&router);
            let stop = &stop;
            scope.spawn(move || {
                let request = mixed_request(fx, client);
                let mut last_versions = HashMap::new();
                while !stop.load(Ordering::Relaxed) {
                    let response = router
                        .predict_ite_scatter_versioned(&request.tags, &request.x)
                        .expect("no request may fail during the replica lifecycle");
                    check_response(&request, &response, &mut last_versions);
                }
            });
        }

        // Let a little settled traffic through between lifecycle steps
        // so every intermediate topology really serves requests.
        let settle = |label: &str| {
            let until = router.stats().requests + 2 * CLIENTS as u64;
            while router.stats().requests < until {
                assert!(
                    Instant::now() < deadline,
                    "timed out settling after {label}"
                );
                std::thread::yield_now();
            }
        };
        settle("warm-up");

        // Scale the hot domain out to three replicas. Each add publishes
        // its staged clone on the new shard (version 1 → 2) and then
        // grows the replica-set in one flip.
        let report = orchestrator
            .add_replica(0, 1, fx.base.clone())
            .expect("healthy fleet commits the first add");
        assert_eq!((report.domain, report.shard), (0, 1));
        assert_eq!(report.published_version, Some(2));
        assert_eq!(router.replicas(0).unwrap().shards(), &[0, 1]);
        settle("first add");

        // Policy swaps mid-traffic never change results, only placement.
        router.set_route_policy(Arc::new(RoundRobin::new()));
        let report = orchestrator
            .add_replica(0, 2, fx.base.clone())
            .expect("healthy fleet commits the second add");
        assert_eq!(report.published_version, Some(2));
        assert_eq!(router.replicas(0).unwrap().shards(), &[0, 1, 2]);
        settle("second add");

        // Scale back in: drain is reversible (the engine keeps holding
        // the domain) until remove finalizes it.
        router.set_route_policy(Arc::new(VersionPinned::new(2)));
        let report = orchestrator
            .drain_replica(0, 1)
            .expect("healthy fleet drains shard 1");
        assert_eq!(report.published_version, None);
        assert_eq!(router.draining_replicas(), vec![(0, 1)]);
        assert_eq!(router.replicas(0).unwrap().shards(), &[0, 2]);
        settle("drain of shard 1");
        orchestrator
            .remove_replica(0, 1)
            .expect("healthy fleet removes shard 1");
        assert!(router.draining_replicas().is_empty());

        router.set_route_policy(Arc::new(LeastLoaded));
        orchestrator
            .drain_replica(0, 2)
            .expect("healthy fleet drains shard 2");
        settle("drain of shard 2");
        orchestrator
            .remove_replica(0, 2)
            .expect("healthy fleet removes shard 2");
        assert_eq!(router.replicas(0).unwrap().shards(), &[0]);
        settle("scale-in");
        stop.store(true, Ordering::Relaxed);
    });

    // The fleet is back to the initial topology; the adds' published
    // engines stay on their shards (versions bumped, never rolled back).
    assert_eq!(*router.map(), initial_map());
    assert_eq!(router.shard_versions(), vec![1, 2, 2]);
    let stats = router.stats();
    assert_eq!(stats.rejected, 0, "zero faults across the whole lifecycle");
    assert!(
        stats.mean_shards_per_scatter() > 1.0,
        "requests really crossed shards: {stats:?}"
    );

    // The per-domain counters single out the hot domain: every request
    // touches all three domains (equal request counts), but domain 0
    // carries two thirds of the rows.
    let loads = router.domain_loads();
    let rows_of = |domain: u64| {
        loads
            .iter()
            .find(|l| l.domain == Some(domain))
            .unwrap_or_else(|| panic!("domain {domain} missing from {loads:?}"))
            .rows
    };
    assert!(
        rows_of(0) > 3 * rows_of(1) && rows_of(0) > 3 * rows_of(2),
        "hot-domain attribution lost the skew: {loads:?}"
    );

    // The lifecycle left a full, abort-free event trail.
    let events = ring.events(64);
    let count = |kind: EventKind| events.iter().filter(|e| e.kind == kind).count();
    assert_eq!(count(EventKind::ReplicaAdded), 2);
    assert_eq!(count(EventKind::ReplicaDrained), 2);
    assert_eq!(count(EventKind::ReplicaRemoved), 2);
    assert_eq!(count(EventKind::MoveAborted), 0);
}

#[test]
fn replica_lifecycle_under_unbatched_scatter_load() {
    run_stress(None);
}

#[test]
fn replica_lifecycle_under_batched_scatter_load() {
    run_stress(Some(BatchConfig {
        max_wait: Duration::from_millis(2),
        ..BatchConfig::default()
    }));
}
