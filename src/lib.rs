//! # cerl
//!
//! Facade crate for the CERL workspace — a Rust reproduction of
//! *Continual Causal Inference with Incremental Observational Data*
//! (Chu, Li, Rathbun & Li, ICDE 2023).
//!
//! CERL estimates individual (ITE) and average (ATE) treatment effects
//! from observational data arriving **incrementally from non-stationary
//! domains**, without access to previous raw data: a bounded memory of
//! herding-selected feature representations, feature-representation
//! distillation, and a representation-space transformation `φ` carry
//! knowledge across stages.
//!
//! ## Crates
//!
//! | crate | contents |
//! |-------|----------|
//! | [`math`] | dense matrices, Cholesky/Jacobi, special functions, hub-Toeplitz correlations |
//! | [`rand`] | normal/gamma/Dirichlet/categorical/MVN samplers, seed derivation |
//! | [`nn`] | tape autodiff, layers (incl. cosine normalization), Adam/SGD |
//! | [`ot`] | Sinkhorn-Wasserstein and MMD representation-balance penalties |
//! | [`data`] | synthetic §IV.C generator, News/BlogCatalog simulators, domain streams |
//! | [`core`] | the CERL learner, serving engine, CFR baselines, strategies, metrics |
//! | [`serve`] | micro-batching scheduler, domain→replica-set router with pluggable route policies, latency histograms |
//! | [`net`] | epoll socket front-end: binary wire protocol, admission deadlines, connection backpressure |
//! | [`obs`] | wait-free request tracing, unified metrics registry, structured fleet events |
//!
//! ## Quickstart: the serving engine
//!
//! [`CerlEngine`](prelude::CerlEngine) is the recommended entry point: a
//! fallible builder validates the configuration, the covariate dimension
//! is inferred from the first observed domain, every request path returns
//! a typed [`CerlError`](prelude::CerlError) instead of panicking, and a
//! trained estimator round-trips through versioned snapshot bytes — so a
//! service can restart (or hot-swap replicas) without losing the model.
//!
//! ```
//! use cerl::prelude::*;
//!
//! // Three incrementally available domains with shifted distributions.
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 42);
//! let stream = DomainStream::synthetic(&gen, 3, 0, 42);
//!
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed; use the default for real runs
//! let mut engine = CerlEngineBuilder::new(cfg).seed(42).build()?;
//!
//! for d in 0..stream.len() {
//!     let report = engine.observe(&stream.domain(d).train, &stream.domain(d).val)?;
//!     assert_eq!(report.stage, d + 1);
//! }
//!
//! // One model serves every seen domain; raw history was never retained.
//! let test = &stream.domain(0).test;
//! let metrics = EffectMetrics::on_dataset(test, &engine.predict_ite(&test.x)?);
//! assert!(metrics.sqrt_pehe.is_finite());
//!
//! // Persist across restarts / ship to another replica.
//! let bytes = engine.save_bytes()?;
//! let restored = CerlEngine::load_bytes(&bytes)?;
//! assert_eq!(restored.predict_ite(&test.x)?, engine.predict_ite(&test.x)?);
//! # Ok::<(), CerlError>(())
//! ```
//!
//! ## Concurrent serving
//!
//! For a process with many request threads, wrap the engine in a
//! [`ServingEngine`](prelude::ServingEngine): readers pin the current
//! engine version through a lock held only for an `Arc` clone, large
//! requests fan out across scoped worker threads with bitwise-deterministic
//! results, and a writer can hot-swap a retrained or freshly deserialized
//! engine under load without readers ever blocking on training:
//!
//! ```
//! use cerl::prelude::*;
//!
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 9);
//! let stream = DomainStream::synthetic(&gen, 2, 0, 9);
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed
//! let mut engine = CerlEngineBuilder::new(cfg).seed(9).build()?;
//! engine.observe(&stream.domain(0).train, &stream.domain(0).val)?;
//!
//! let serving = std::sync::Arc::new(ServingEngine::new(engine));
//! let x = &stream.domain(0).test.x;
//! let ite = serving.predict_ite_parallel(x, 4)?; // fan out one request
//! assert_eq!(ite, serving.predict_ite(x)?);      // ... deterministically
//!
//! // Train the next domain in and publish it; concurrent readers keep
//! // answering from version 1 until the single-pointer swap.
//! let (_, version) =
//!     serving.observe_and_swap(&stream.domain(1).train, &stream.domain(1).val)?;
//! assert_eq!(version, 2);
//! # Ok::<(), CerlError>(())
//! ```
//!
//! ## Raw speed: f32 serving and binary snapshots
//!
//! Training always runs in `f64`. A serving replica can opt into
//! [`PrecisionMode::F32`](prelude::PrecisionMode): the trained weights
//! are narrowed once into a compiled plan and every predict runs
//! through `f32` GEMMs — half the memory traffic on the hot path. The
//! determinism contract is **per precision mode**: within one mode,
//! predictions stay bitwise-identical across entry points, thread
//! counts, and restarts; switching modes changes rounding, never the
//! contract.
//!
//! Snapshots have a compact binary form alongside JSON
//! (`save_bytes_binary`): a sectioned little-endian container that
//! stores the float payload as raw IEEE-754 values —
//! [`SnapshotPayload::F32`](prelude::SnapshotPayload) narrows the
//! payload to 4 bytes per weight, cutting fleet-restore and rebalance
//! staging bytes ~4–5x. `load_bytes` sniffs the format, so both forms
//! restore through the same call:
//!
//! ```
//! use cerl::prelude::*;
//!
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 7);
//! let stream = DomainStream::synthetic(&gen, 1, 0, 7);
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed
//! let mut engine = CerlEngineBuilder::new(cfg).seed(7).build()?;
//! engine.observe(&stream.domain(0).train, &stream.domain(0).val)?;
//! let x = &stream.domain(0).test.x;
//!
//! // Opt into f32 inference; training (observe) stays f64.
//! engine.set_precision(PrecisionMode::F32)?;
//! let fast = engine.predict_ite(x)?;
//!
//! // Binary snapshot with a narrowed payload: at most 1/4 of JSON.
//! let json = engine.save_bytes()?;
//! let bin = engine.save_bytes_binary(SnapshotPayload::F32)?;
//! assert!(bin.len() * 4 <= json.len());
//!
//! // The format is sniffed on load; a restored replica defaults to
//! // F64 (precision is serving state, not model state).
//! let mut replica = CerlEngine::load_bytes(&bin)?;
//! assert_eq!(replica.precision(), PrecisionMode::F64);
//! replica.set_precision(PrecisionMode::F32)?;
//! // The f32 payload holds exactly the floats the f32 plan compiles
//! // from, so the replica's f32 serving is bitwise the source's.
//! assert_eq!(replica.predict_ite(x)?, fast);
//! # Ok::<(), CerlError>(())
//! ```
//!
//! A full-fidelity `SnapshotPayload::F64` binary snapshot round-trips
//! every weight bitwise (still ~2x smaller than JSON); JSON snapshots
//! from earlier format versions keep loading unchanged.
//!
//! ## Serving at scale: batching and sharding
//!
//! The [`serve`] layer turns the engine into a service
//! front-end. A [`BatchScheduler`](prelude::BatchScheduler) coalesces
//! many small concurrent requests into one fanned forward pass — with a
//! bounded submission queue, a `max_wait` latency budget, and results
//! bitwise identical to unbatched calls — and a
//! [`ShardRouter`](prelude::ShardRouter) keys N independently
//! hot-swappable engines by the
//! [`ShardMap`](prelude::ShardMap) carried in snapshot metadata.
//! [`ServeStats`](prelude::ServeStats) reports p50/p95/p99 queue-wait
//! and end-to-end latency plus per-version request counts for watching
//! a canary swap:
//!
//! ```
//! use cerl::prelude::*;
//! use std::time::Duration;
//!
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 11);
//! let stream = DomainStream::synthetic(&gen, 2, 0, 11);
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed
//!
//! // One engine per domain shard, routed by domain id.
//! let engines: Vec<CerlEngine> = (0..2)
//!     .map(|d| {
//!         let mut e = CerlEngineBuilder::new(cfg.clone()).seed(d as u64).build()?;
//!         e.observe(&stream.domain(d).train, &stream.domain(d).val)?;
//!         Ok(e)
//!     })
//!     .collect::<Result<_, CerlError>>()?;
//! let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)])?;
//! let router = ShardRouter::with_batching(
//!     engines,
//!     map,
//!     BatchConfig { max_wait: Duration::from_millis(2), ..BatchConfig::default() },
//! )?;
//!
//! let x = stream.domain(1).test.x.slice_rows(0, 4);
//! let (version, ite) = router.predict_ite_versioned(1, &x)?;
//! assert_eq!((version, ite.len()), (1, 4));
//! assert!(matches!(
//!     router.predict_ite(42, &x),
//!     Err(ServeError::UnknownDomain { domain: 42 })
//! ));
//! assert_eq!(router.stats().requests, 1);
//! # Ok::<(), cerl::serve::ServeError>(())
//! ```
//!
//! ## Cross-shard queries and rebalancing
//!
//! Real traffic mixes domains in one request, and fleet topology is not
//! forever. [`ShardRouter::predict_ite_scatter`](prelude::ShardRouter)
//! serves a request whose rows span domains: rows are demuxed by the
//! pinned [`ShardMap`](prelude::ShardMap) into per-shard sub-batches,
//! fanned out, and merged back in the original row order — bitwise
//! identical to one unsharded engine serving the same rows. To move a
//! domain between shards with zero downtime,
//! [`begin_rebalance`](prelude::ShardRouter::begin_rebalance) stages a
//! probed successor for the destination (reads keep routing to the
//! source — the *dual-route window*),
//! [`commit_rebalance`](prelude::ShardRouter::commit_rebalance)
//! publishes the successor and then flips the map with one atomic
//! pointer swap (no request ever sees a torn topology), and
//! [`abort_rebalance`](prelude::ShardRouter::abort_rebalance) discards
//! the staged engine without readers ever having seen it:
//!
//! ```
//! use cerl::prelude::*;
//!
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 13);
//! let stream = DomainStream::synthetic(&gen, 2, 0, 13);
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed
//! let mut engine = CerlEngineBuilder::new(cfg).seed(13).build()?;
//! engine.observe(&stream.domain(0).train, &stream.domain(0).val)?;
//!
//! // Two shards (clones of one engine, for the doc's determinism);
//! // domains 0 and 1 start on shard 0, domain 2 on shard 1.
//! let map = ShardMap::from_pairs(2, &[(0, 0), (1, 0), (2, 1)])?;
//! let router = ShardRouter::new(vec![engine.clone(), engine.clone()], map)?;
//!
//! // A mixed-domain request: each row carries its own domain tag.
//! let x = stream.domain(0).test.x.slice_rows(0, 6);
//! let tags = [0u64, 2, 1, 2, 0, 1];
//! let scatter = router.predict_ite_scatter(&tags, &x)?;
//! assert_eq!(scatter, engine.predict_ite(&x)?); // bitwise, despite the fan-out
//!
//! // Move domain 1 to shard 1: stage (dual-route window opens), commit
//! // (destination publishes first, then the map flips atomically).
//! router.begin_rebalance(1, 1, engine.clone())?;
//! assert_eq!(router.route(1)?, 0); // reads still on the source
//! router.commit_rebalance()?;
//! assert_eq!(router.route(1)?, 1);
//! assert_eq!(router.predict_ite_scatter(&tags, &x)?, scatter);
//! # Ok::<(), cerl::serve::ServeError>(())
//! ```
//!
//! ## Replicated domains
//!
//! One celebrity domain can saturate one engine. The
//! [`ShardMap`](prelude::ShardMap) therefore maps each domain to an
//! ordered **replica-set** ([`ReplicaSet`](prelude::ReplicaSet)) of
//! shards all serving the same model, and a pluggable
//! [`RoutePolicy`](prelude::RoutePolicy) picks the serving replica per
//! sub-batch — [`LeastLoaded`](prelude::LeastLoaded) (default),
//! [`RoundRobin`](prelude::RoundRobin), or
//! [`VersionPinned`](prelude::VersionPinned) for canary reads. Policies
//! choose *placement only*: results stay bitwise identical to an
//! unreplicated reference under every policy, and single-replica
//! domains never consult a policy at all. Replica membership changes
//! ride the rebalance machinery —
//! [`add_replica`](prelude::RebalanceOrchestrator::add_replica) /
//! [`drain_replica`](prelude::RebalanceOrchestrator::drain_replica) /
//! [`remove_replica`](prelude::RebalanceOrchestrator::remove_replica)
//! each watch a canary window and auto-abort on regression
//! ([`ServeError::ReplicaChangeAborted`](prelude::ServeError)):
//!
//! ```
//! use cerl::prelude::*;
//! use std::sync::Arc;
//!
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 29);
//! let stream = DomainStream::synthetic(&gen, 1, 0, 29);
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed
//! let mut engine = CerlEngineBuilder::new(cfg).seed(29).build()?;
//! engine.observe(&stream.domain(0).train, &stream.domain(0).val)?;
//!
//! // Hot domain 0 on two replicas of a 2-shard fleet (clones of one
//! // engine — a replica-set always serves one model).
//! let map = ShardMap::from_replicas(2, &[(0, vec![0, 1])])?;
//! let router = Arc::new(ShardRouter::new(vec![engine.clone(), engine.clone()], map)?);
//! assert_eq!(router.replicas(0)?.shards(), &[0, 1]);
//!
//! // Any policy, same rows: spreading is invisible in the results.
//! let x = stream.domain(0).test.x.slice_rows(0, 8);
//! let reference = engine.predict_ite(&x)?;
//! for policy in [
//!     Arc::new(RoundRobin::new()) as Arc<dyn RoutePolicy>,
//!     Arc::new(LeastLoaded),
//!     Arc::new(VersionPinned::new(1)),
//! ] {
//!     router.set_route_policy(policy);
//!     assert_eq!(router.predict_ite(0, &x)?, reference); // bitwise
//! }
//!
//! // Scale back in: drain is reversible, remove is final — and under
//! // an orchestrator both watch a canary window first.
//! let orchestrator = RebalanceOrchestrator::new(
//!     Arc::clone(&router),
//!     OrchestratorConfig {
//!         canary: CanaryConfig { window_requests: 0, ..CanaryConfig::default() },
//!         ..OrchestratorConfig::default()
//!     },
//! );
//! orchestrator.drain_replica(0, 1)?;
//! assert_eq!(router.draining_replicas(), vec![(0, 1)]);
//! orchestrator.remove_replica(0, 1)?;
//! assert_eq!(router.replicas(0)?.shards(), &[0]);
//! assert_eq!(router.predict_ite(0, &x)?, reference); // still bitwise
//! # Ok::<(), cerl::serve::ServeError>(())
//! ```
//!
//! The per-domain request counters behind
//! [`ShardRouter::domain_loads`](prelude::ShardRouter::domain_loads)
//! (exported as `cerl_serve_domain_requests_total` /
//! `cerl_serve_domain_rows_total`) are the attribution signal that says
//! *which* domain earned a replica.
//!
//! ## Planned topology changes
//!
//! Moving domains one `begin`/`commit` at a time does not scale to a
//! fleet whose topology evolves with every arriving domain. A
//! [`RebalanceOrchestrator`](prelude::RebalanceOrchestrator) takes a
//! *target* [`ShardMap`](prelude::ShardMap), derives the move list
//! ([`ShardMap::diff`](prelude::ShardMap::diff)), orders it load-aware
//! (hottest source shard drains first), and executes every move through
//! the zero-downtime path — watching a **canary window** per move
//! (windowed p95 latency and error-rate deltas against a pre-plan
//! baseline) and auto-aborting with
//! [`ServeError::PlanHalted`](prelude::ServeError) if live traffic
//! regresses, leaving the fleet on the valid topology formed by the
//! committed prefix:
//!
//! ```
//! use cerl::prelude::*;
//! use std::sync::Arc;
//!
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 17);
//! let stream = DomainStream::synthetic(&gen, 1, 0, 17);
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed
//! let mut engine = CerlEngineBuilder::new(cfg).seed(17).build()?;
//! engine.observe(&stream.domain(0).train, &stream.domain(0).val)?;
//!
//! // Three domains packed onto shard 0 of a 3-shard fleet (clones of one
//! // engine, for the doc's determinism); the target spreads them out.
//! let packed = ShardMap::from_pairs(3, &[(0, 0), (1, 0), (2, 0)])?;
//! let target = ShardMap::from_pairs(3, &[(0, 0), (1, 1), (2, 2)])?;
//! let router = Arc::new(ShardRouter::new(
//!     vec![engine.clone(), engine.clone(), engine.clone()],
//!     packed,
//! )?);
//!
//! let orchestrator = RebalanceOrchestrator::new(
//!     Arc::clone(&router),
//!     OrchestratorConfig {
//!         // An idle doc-test fleet: close canary windows immediately.
//!         canary: CanaryConfig { window_requests: 0, ..CanaryConfig::default() },
//!         ..OrchestratorConfig::default()
//!     },
//! );
//! let plan = orchestrator.plan(&target)?;
//! assert_eq!(plan.len(), 2);
//!
//! // Each move's successor must hold the arriving domain plus whatever
//! // its destination already serves (here: a clone of the one engine).
//! let report = orchestrator.execute(&plan, |_mv| Ok(engine.clone()))?;
//! assert_eq!(report.moves.len(), 2);
//! assert_eq!(router.route(1)?, 1);
//! assert_eq!(router.route(2)?, 2);
//!
//! // The topology now matches the target: a fresh plan is empty.
//! assert!(orchestrator.plan(&target)?.is_empty());
//! # Ok::<(), cerl::serve::ServeError>(())
//! ```
//!
//! ## Serving over the network
//!
//! The [`net`] layer puts a real socket in front of all of the above: a
//! [`NetServer`](prelude::NetServer) runs a single-threaded `epoll`
//! reactor (no external runtime) that decodes a length-prefixed binary
//! protocol, submits each request to a [`NetBackend`](prelude::NetBackend)
//! — a [`BatchScheduler`](prelude::BatchScheduler) or a
//! [`ShardRouter`](prelude::ShardRouter) — and polls the returned handles
//! as `Future`s via per-connection wakers, so one thread multiplexes
//! thousands of in-flight requests. A prediction served over the socket
//! is **bitwise identical** to the same request answered in-process.
//!
//! Request frames (little-endian; responses mirror the header and carry
//! either ITE rows or a typed status + detail string):
//!
//! | bytes | field |
//! |-------|-------|
//! | 4 | frame length `u32` (16 MiB cap — hostile prefixes are rejected, never allocated) |
//! | 1, 1, 1, 1 | magic `0xC3`, protocol version, kind (0 = request), flags (must be 0) |
//! | 8 | request id `u64` (echoed in the response) |
//! | 4 | admission deadline in ms, `u32` (0 = none) |
//! | 4, 4 | rows `u32`, cols `u32` |
//! | rows × 8 | per-row domain tags `u64` (ignored by the scheduler backend) |
//! | rows × cols × 8 | covariates, `f64` bit patterns |
//!
//! Per connection the reactor enforces a bounded in-flight window,
//! sheds requests whose **admission deadline** expires before a slot
//! frees (typed [`Deadline`](prelude::WireStatus::Deadline) response,
//! no inference spent), and stops *reading* any socket whose response
//! backlog passes the high-water mark, so a slow reader pushes back on
//! itself instead of on the fleet. Malformed bytes always produce a
//! typed [`MalformedRequest`](prelude::WireStatus::MalformedRequest) —
//! client faults and serve faults are counted separately
//! ([`NetStatsSnapshot`](prelude::NetStatsSnapshot)), mirroring the
//! canary taxonomy of
//! [`ServeError::is_client_fault`](prelude::ServeError::is_client_fault).
//!
//! ```
//! use cerl::prelude::*;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 19);
//! let stream = DomainStream::synthetic(&gen, 1, 0, 19);
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed
//! let mut engine = CerlEngineBuilder::new(cfg).seed(19).build()?;
//! engine.observe(&stream.domain(0).train, &stream.domain(0).val)?;
//!
//! // In-process stack: serving engine + micro-batching scheduler.
//! let serving = Arc::new(ServingEngine::new(engine));
//! let scheduler = Arc::new(BatchScheduler::new(
//!     Arc::clone(&serving),
//!     BatchConfig { max_wait: Duration::from_millis(1), ..BatchConfig::default() },
//! ));
//!
//! // Put a socket in front of it and talk to it like any client would.
//! let server = NetServer::bind(
//!     "127.0.0.1:0",
//!     NetBackend::Scheduler(scheduler),
//!     NetServerConfig::default(),
//! )?;
//! let mut client = NetClient::connect(server.local_addr())?;
//!
//! let x = stream.domain(0).test.x.slice_rows(0, 4);
//! let ite = client.predict(&[0; 4], &x, Some(Duration::from_secs(5)))?;
//! assert_eq!(ite, serving.predict_ite(&x)?); // bitwise, across the socket
//!
//! let stats = server.shutdown()?;
//! assert_eq!((stats.responses_ok, stats.rejected_serve), (1, 0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Watching a live fleet
//!
//! The [`obs`] layer is the serving stack's observability plane, and it
//! is wired through every tier above: give the server a
//! [`TraceRing`](prelude::TraceRing) and every sampled request carries a
//! span stamped at each pipeline stage (`accepted → decoded →
//! admission_wait → submitted → queue_wait → batched → inference →
//! gathered → written`) — wait-free, no lock or allocation on the hot
//! path, 1-in-N sampling, and an explicit dropped-span counter when the
//! ring overflows. Give it an `admin_bind` address and the same reactor
//! serves an **admin plane** on a second listener: unified
//! Prometheus-style metrics exposition (net counters, per-connection
//! rows, scheduler/router latency histograms, per-shard loads, trace
//! accounting), an `ok:<versions>:<inflight>` health line (also
//! answered to any **UDP datagram** on the serve address, for probes
//! that cannot afford a TCP handshake), and recent span/event dumps.
//! [`RebalanceOrchestrator`](prelude::RebalanceOrchestrator) emits
//! structured [`EventKind`](prelude::EventKind) records (baseline
//! captured, move committed/aborted, plan halted) into the same ring.
//!
//! Admin frames reuse the wire protocol with their own kinds
//! ([`AdminOp`](prelude::AdminOp): `Metrics`, `Health`, `TraceDump`);
//! the serve listener rejects them, and the admin listener rejects
//! predict frames — the planes cannot be crossed by a confused client.
//!
//! ```
//! use cerl::prelude::*;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 23);
//! let stream = DomainStream::synthetic(&gen, 1, 0, 23);
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed
//! let mut engine = CerlEngineBuilder::new(cfg).seed(23).build()?;
//! engine.observe(&stream.domain(0).train, &stream.domain(0).val)?;
//!
//! let serving = Arc::new(ServingEngine::new(engine));
//! let scheduler = Arc::new(BatchScheduler::new(
//!     Arc::clone(&serving),
//!     BatchConfig { max_wait: Duration::from_millis(1), ..BatchConfig::default() },
//! ));
//!
//! // Trace every request (sample_every = 1) and open the admin plane.
//! let ring = TraceRing::new(256, 1);
//! let server = NetServer::bind(
//!     "127.0.0.1:0",
//!     NetBackend::Scheduler(scheduler),
//!     NetServerConfig {
//!         admin_bind: Some("127.0.0.1:0".into()),
//!         trace: Some(Arc::clone(&ring)),
//!         ..NetServerConfig::default()
//!     },
//! )?;
//!
//! let mut client = NetClient::connect(server.local_addr())?;
//! let x = stream.domain(0).test.x.slice_rows(0, 4);
//! for _ in 0..3 {
//!     client.predict(&[0; 4], &x, None)?;
//! }
//!
//! // Scrape the fleet over the admin listener.
//! let mut admin = NetClient::connect(server.admin_addr().unwrap())?;
//! assert!(admin.health()?.starts_with("ok:1:")); // versions : inflight
//! let metrics = admin.scrape_metrics()?;
//! assert!(metrics.contains("cerl_net_responses_ok_total 3"));
//! assert!(metrics.contains("cerl_serve_requests_total"));
//! assert!(metrics.contains("cerl_obs_trace_sampled_total 3"));
//!
//! // Every span retired with monotone stage stamps.
//! let spans = ring.dump(16);
//! assert_eq!(spans.len(), 3);
//! assert!(spans.iter().all(|s| s.is_monotone()));
//! assert!(spans[0].stamp(Stage::Written).is_some());
//!
//! server.shutdown()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Invariants, machine-checked
//!
//! The concurrency discipline the serving stack depends on is enforced
//! by `cerl-analyze`, a dependency-free static-analysis pass that runs
//! as a deny-mode CI lane (and locally via
//! `cargo run -p cerl-analyze -- --deny`):
//!
//! | Rule id | Invariant |
//! |---|---|
//! | `unsafe-comment` | every `unsafe` carries a `// SAFETY:` justification |
//! | `atomic-ordering` | every `Ordering::*` in non-test code carries an `// ordering:` comment naming the happens-before edge it relies on (or stating there is none) |
//! | `seqcst-hot-path` | `SeqCst` is flagged unconditionally in hot-path modules — not waivable by annotation; today the workspace contains **zero** `SeqCst` sites |
//! | `panic-path` | no `unwrap`/`expect`/`panic!`/`assert!`/slice-indexing in non-test serving-path code without a `// panic-ok:` reason stating the bound or contract — scoped by crate prefix over all of `cerl-serve` (including the replica route policies of `policy.rs`), `cerl-net`, `cerl-obs` (including the per-domain counters of `domains.rs`), `cerl-core`'s serving module, and the dense kernels |
//! | `lock-blocking` | no lock guard held across `recv()`/`submit()`/`accept()`/`sleep`/`join()` (waive with `// lock-ok:`) |
//! | `lock-order` | the hot-swap discipline: the writer lock is acquired before the published-pointer lock (document a caller obligation with `// lock-order:`) |
//! | `taxonomy` | every `ServeError` variant is classified by `is_client_fault` (no wildcard arm) and every wire `Status` is mapped in encode/decode |
//! | `obs-stage` | every trace `.stamp(` call site names a literal `Stage::<variant>`, and within one function the named stages follow the request lifecycle order (generic forwarders waive with `// obs-stage:`) |
//!
//! Annotations live where the code lives, so `git blame` answers "why
//! is this ordering sufficient" the same way it answers "why is this
//! line here". Findings print as `file:line — rule — message`, with a
//! JSON summary (`--json`) for tooling. The analyzer's own fixtures
//! (`crates/cerl-analyze/fixtures/`) pin each rule's fire/no-fire
//! behaviour, and a self-test asserts the workspace scans clean.
//!
//! ## Research-style API
//!
//! The original research-facing types remain available: construct
//! [`Cerl`](prelude::Cerl) directly when the covariate dimension is known
//! up front, or use the infallible `observe`/`predict_ite` wrappers (which
//! panic with the typed error's message on misuse):
//!
//! ```
//! use cerl::prelude::*;
//!
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 42);
//! let stream = DomainStream::synthetic(&gen, 2, 0, 42);
//!
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed
//! let mut learner = Cerl::new(stream.domain(0).train.dim(), cfg, 42);
//! for d in 0..stream.len() {
//!     learner.observe(&stream.domain(d).train, &stream.domain(d).val);
//! }
//! assert_eq!(learner.stage(), 2);
//! ```

pub use cerl_core as core;
pub use cerl_data as data;
pub use cerl_math as math;
pub use cerl_net as net;
pub use cerl_nn as nn;
pub use cerl_obs as obs;
pub use cerl_ot as ot;
pub use cerl_rand as rand;
pub use cerl_serve as serve;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use cerl_core::{
        paper_lineup, Ablation, Cerl, CerlConfig, CerlEngine, CerlEngineBuilder, CerlError, CfrA,
        CfrB, CfrC, CfrModel, ContinualEstimator, DistillKind, EffectMetrics, IpmKind, Memory,
        ModelSnapshot, NetConfig, PrecisionMode, ReplicaChange, ReplicaSet, SLearner,
        ServingEngine, ServingStats, ServingStatsSnapshot, ShardAssignment, ShardMap, ShardMapDiff,
        ShardMove, SnapshotError, SnapshotPayload, StageReport, TLearner, TrainConfig, TrainReport,
        VersionStats, VersionedEngine, SNAPSHOT_BINARY_FORMAT_VERSION, SNAPSHOT_FORMAT_VERSION,
    };
    pub use cerl_data::{
        CausalDataset, DataError, DomainShift, DomainStream, SemiSyntheticConfig,
        SemiSyntheticGenerator, SyntheticConfig, SyntheticGenerator,
    };
    pub use cerl_math::Matrix;
    pub use cerl_net::{
        AdminOp, AdminRequest, AdminResponse, ConnStatsSnapshot, NetBackend, NetClient, NetError,
        NetServer, NetServerConfig, NetStatsSnapshot, Request as WireRequest,
        Response as WireResponse, Status as WireStatus, WireError,
    };
    pub use cerl_obs::{
        DomainCounters, DomainLoad, EventKind, EventSnapshot, MetricsRegistry, SpanSnapshot, Stage,
        TraceRing, TraceSpan, TraceStats,
    };
    pub use cerl_serve::{
        BatchConfig, BatchScheduler, CanaryConfig, CanarySnapshot, CanaryWindow, LatencyHistogram,
        LatencySnapshot, LeastLoaded, MoveReport, OrchestratorConfig, PlanReport,
        RebalanceOrchestrator, RebalancePlan, RebalancePlanner, ReplicaReport, ResponseHandle,
        RoundRobin, RouteContext, RoutePolicy, ScatterHandle, ScatterResponse, ServeError,
        ServeStats, ShardLoad, ShardRouter, VersionPinned,
    };
}
