//! # cerl
//!
//! Facade crate for the CERL workspace — a Rust reproduction of
//! *Continual Causal Inference with Incremental Observational Data*
//! (Chu, Li, Rathbun & Li, ICDE 2023).
//!
//! CERL estimates individual (ITE) and average (ATE) treatment effects
//! from observational data arriving **incrementally from non-stationary
//! domains**, without access to previous raw data: a bounded memory of
//! herding-selected feature representations, feature-representation
//! distillation, and a representation-space transformation `φ` carry
//! knowledge across stages.
//!
//! ## Crates
//!
//! | crate | contents |
//! |-------|----------|
//! | [`math`](cerl_math) | dense matrices, Cholesky/Jacobi, special functions, hub-Toeplitz correlations |
//! | [`rand`](cerl_rand) | normal/gamma/Dirichlet/categorical/MVN samplers, seed derivation |
//! | [`nn`](cerl_nn) | tape autodiff, layers (incl. cosine normalization), Adam/SGD |
//! | [`ot`](cerl_ot) | Sinkhorn-Wasserstein and MMD representation-balance penalties |
//! | [`data`](cerl_data) | synthetic §IV.C generator, News/BlogCatalog simulators, domain streams |
//! | [`core`](cerl_core) | the CERL learner, CFR baseline, strategies CFR-A/B/C, metrics |
//!
//! ## Quickstart
//!
//! ```
//! use cerl::prelude::*;
//!
//! // Three incrementally available domains with shifted distributions.
//! let gen = SyntheticGenerator::new(SyntheticConfig::small(), 42);
//! let stream = DomainStream::synthetic(&gen, 3, 0, 42);
//!
//! let mut cfg = CerlConfig::quick_test();
//! cfg.train.epochs = 2; // doc-test speed; use the default for real runs
//! let mut learner = Cerl::new(stream.domain(0).train.dim(), cfg, 42);
//!
//! for d in 0..stream.len() {
//!     let report = learner.observe(&stream.domain(d).train, &stream.domain(d).val);
//!     assert_eq!(report.stage, d + 1);
//! }
//!
//! // One model serves every seen domain; raw history was never retained.
//! let metrics = EffectMetrics::on_dataset(
//!     &stream.domain(0).test,
//!     &learner.predict_ite(&stream.domain(0).test.x),
//! );
//! assert!(metrics.sqrt_pehe.is_finite());
//! ```

pub use cerl_core as core;
pub use cerl_data as data;
pub use cerl_math as math;
pub use cerl_nn as nn;
pub use cerl_ot as ot;
pub use cerl_rand as rand;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use cerl_core::{
        Ablation, Cerl, CerlConfig, CfrA, CfrB, CfrC, CfrModel, ContinualEstimator,
        EffectMetrics, IpmKind, Memory, StageReport, TrainReport,
    };
    pub use cerl_data::{
        CausalDataset, DomainShift, DomainStream, SemiSyntheticConfig, SemiSyntheticGenerator,
        SyntheticConfig, SyntheticGenerator,
    };
    pub use cerl_math::Matrix;
}
