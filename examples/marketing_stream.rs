//! Marketing-campaign scenario (the paper's motivating Alipay example):
//! electronic financial records for one campaign arrive city by city, each
//! city with its own covariate distribution; old cities' raw records become
//! inaccessible (privacy / retention limits) once processed.
//!
//! The treatment is a campaign incentive, the outcome a spend-like score,
//! and the question is the incentive's heterogeneous uplift. We simulate
//! five "cities" with the §IV.C generator and show that a single CERL model
//! tracks the all-data ideal while storing only a fixed-size memory.
//!
//! ```text
//! cargo run --release --example marketing_stream
//! ```

use cerl::prelude::*;

fn main() -> Result<(), CerlError> {
    let cities = ["Hangzhou", "Shanghai", "Beijing", "Shenzhen", "Chengdu"];
    let data_cfg = SyntheticConfig {
        n_units: 1000,
        noise_sd: 0.4,
        mean_shift_scale: 1.0,
        ..SyntheticConfig::default()
    };
    let gen = SyntheticGenerator::new(data_cfg, 11);
    let stream = DomainStream::synthetic(&gen, cities.len(), 0, 11);
    let d_in = stream.domain(0).train.dim();

    let mut cfg = CerlConfig::default();
    cfg.train.epochs = 40;
    cfg.memory_size = 500; // fixed memory, regardless of how many cities arrive

    let mut engine = CerlEngineBuilder::new(cfg.clone())
        .seed(11)
        .covariate_dim(d_in)
        .build()?;
    let mut ideal = CfrC::new(d_in, cfg, 11); // stores ALL raw records

    println!("campaign rollout across {} cities:\n", cities.len());
    for (d, city) in cities.iter().enumerate() {
        // Each city is processed by a *fresh replica* restored from the
        // previous city's snapshot — exactly the deployment shape the
        // paper motivates: the serving process can restart (or the model
        // can move between machines) while raw history stays deleted.
        if d > 0 {
            engine = CerlEngine::load_bytes(&engine.save_bytes()?)?;
        }
        engine.observe(&stream.domain(d).train, &stream.domain(d).val)?;
        ideal.try_observe(&stream.domain(d).train, &stream.domain(d).val)?;

        // Uplift error across every city processed so far.
        let mut cerl_pehe = 0.0;
        let mut ideal_pehe = 0.0;
        for seen in 0..=d {
            let test = &stream.domain(seen).test;
            cerl_pehe += EffectMetrics::on_dataset(test, &engine.predict_ite(&test.x)?).sqrt_pehe;
            ideal_pehe += ideal.try_evaluate(test)?.sqrt_pehe;
        }
        let k = (d + 1) as f64;
        println!(
            "after {:<9}: mean √PEHE over {} cit{}  CERL {:.3} | all-data ideal {:.3} | stored: {} reps vs {} raw rows",
            city,
            d + 1,
            if d == 0 { "y" } else { "ies" },
            cerl_pehe / k,
            ideal_pehe / k,
            engine.memory().map_or(0, |m| m.len()),
            ideal.stored_units(),
        );
    }

    let ate = {
        let test = &stream.domain(cities.len() - 1).test;
        // Large request matrices can be served in bounded-memory chunks.
        let ite = engine.predict_ite_chunked(&test.x, 256)?;
        ite.iter().sum::<f64>() / ite.len() as f64
    };
    println!("\nestimated average uplift in the newest city: {ate:.3}");
    println!("(true simulated uplift is E[sin²] ≈ 0.4–0.5 on this mechanism)");
    Ok(())
}
