//! A sharded marketing fleet: three city domains, each served by its own
//! hot-swappable engine shard behind one [`ShardRouter`], with a
//! [`BatchScheduler`] per shard coalescing concurrent client requests
//! into single forward passes.
//!
//! Mid-run, the shard serving the fastest-drifting city retrains on its
//! next observational batch and is warm-swapped (probe batch first, then
//! an atomic pointer move) while the other two shards keep answering
//! without interruption. Per-shard versions and latency percentiles are
//! printed at the end — the canary-watching view `ServeStats` exists for.
//!
//! ```text
//! cargo run --release --example marketing_shards
//! ```

use cerl::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 3;
const CLIENTS_PER_SHARD: usize = 2;

fn main() -> Result<(), ServeError> {
    let gen = SyntheticGenerator::new(
        SyntheticConfig {
            n_units: 800,
            noise_sd: 0.4,
            mean_shift_scale: 1.0,
            ..SyntheticConfig::default()
        },
        29,
    );
    // Domains 0..3 are the three cities' first observational batches;
    // domain 3 is city 2's *second* batch, arriving mid-run.
    let stream = DomainStream::synthetic(&gen, SHARDS + 1, 0, 29);

    let mut cfg = CerlConfig::quick_test();
    cfg.train.epochs = 20;

    // One engine per city, each trained on its own first domain.
    let mut engines = Vec::with_capacity(SHARDS);
    for city in 0..SHARDS {
        let mut engine = CerlEngineBuilder::new(cfg.clone())
            .seed(29 + city as u64)
            .build()?;
        engine.observe(&stream.domain(city).train, &stream.domain(city).val)?;
        engines.push(engine);
    }

    // City id -> shard index (here the identity; a real fleet hashes
    // regions or clusters). The map rides inside snapshot metadata, so a
    // replica restoring from bytes learns the topology too.
    let map = ShardMap::from_pairs(SHARDS, &[(0, 0), (1, 1), (2, 2)])?;
    let router = Arc::new(ShardRouter::with_batching(
        engines,
        map,
        BatchConfig {
            max_wait: Duration::from_millis(2),
            ..BatchConfig::default()
        },
    )?);
    println!(
        "fleet up: {} shards, versions {:?}, {} batched clients per shard",
        router.shard_count(),
        router.shard_versions(),
        CLIENTS_PER_SHARD,
    );

    let stop = AtomicBool::new(false);
    let errors = AtomicUsize::new(0);
    let served = AtomicUsize::new(0);

    std::thread::scope(|scope| -> Result<(), ServeError> {
        // Concurrent batched clients: each hammers its city with small
        // 8-row requests — the shard scheduler coalesces them.
        let (stream, router) = (&stream, &router);
        let (stop, errors, served) = (&stop, &errors, &served);
        for city in 0..SHARDS as u64 {
            for _ in 0..CLIENTS_PER_SHARD {
                scope.spawn(move || {
                    let x = &stream.domain(city as usize).test.x;
                    let mut offset = 0usize;
                    let mut last_version = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let start = offset % (x.rows() - 8);
                        offset += 13;
                        let slice = x.slice_rows(start, start + 8);
                        match router.predict_ite_versioned(city, &slice) {
                            Ok((version, ite)) => {
                                assert!(version >= last_version, "shard versions are monotone");
                                assert_eq!(ite.len(), 8);
                                last_version = version;
                                served.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        }

        // Meanwhile: city 2's next observational batch arrives. Train a
        // successor off to the side and warm-swap only that shard.
        let mut successor = router.shard(2)?.current().engine().clone();
        successor.observe(&stream.domain(3).train, &stream.domain(3).val)?;
        let version = router.swap_shard_engine(2, successor)?;
        println!("shard 2 warm-swapped to version {version} while shards 0 and 1 kept serving");

        // Let the clients observe the new version for a moment.
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        Ok(())
    })?;

    println!(
        "{} requests served, {} errors (want 0)",
        served.load(Ordering::Relaxed),
        errors.load(Ordering::Relaxed),
    );
    println!("final shard versions: {:?}", router.shard_versions());
    for shard in 0..router.shard_count() {
        let stats = router
            .shard_stats(shard)?
            .expect("fleet was built with batching");
        println!(
            "shard {shard}: version {} | {} requests in {} batches (mean {:.1} req/batch) | \
e2e p50 {:.2} ms p95 {:.2} ms | served-by-version {:?}",
            router.shard(shard)?.version(),
            stats.requests,
            stats.batches,
            stats.mean_requests_per_batch(),
            stats.end_to_end.p50.as_secs_f64() * 1e3,
            stats.end_to_end.p95.as_secs_f64() * 1e3,
            stats.per_version_requests,
        );
    }
    let fleet = router.stats();
    println!(
        "fleet: {} requests | e2e p95 {:.2} ms p99 {:.2} ms",
        fleet.requests,
        fleet.end_to_end.p95.as_secs_f64() * 1e3,
        fleet.end_to_end.p99.as_secs_f64() * 1e3,
    );
    assert_eq!(errors.load(Ordering::Relaxed), 0);
    Ok(())
}
