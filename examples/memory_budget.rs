//! Memory-budget trade-off (paper Fig. 3a/3b): how small can the stored
//! representation set be before continual accuracy suffers?
//!
//! Runs CERL over three sequential domains at several memory budgets and
//! reports the final √PEHE over all seen test data, next to the all-data
//! ideal (CFR-C) and the herding-vs-random selection ablation.
//!
//! ```text
//! cargo run --release --example memory_budget
//! ```

use cerl::prelude::*;

fn main() -> Result<(), CerlError> {
    let n_domains = 3;
    let data_cfg = SyntheticConfig {
        n_units: 1000,
        noise_sd: 0.4,
        ..SyntheticConfig::default()
    };
    let gen = SyntheticGenerator::new(data_cfg, 31);
    let stream = DomainStream::synthetic(&gen, n_domains, 0, 31);
    let d_in = stream.domain(0).train.dim();

    let mut base = CerlConfig::default();
    base.train.epochs = 40;

    // Batched inference over every seen domain's test matrix, through the
    // unified fallible estimator interface.
    let union_pehe = |est: &dyn ContinualEstimator| -> Result<f64, CerlError> {
        let chunks: Vec<Matrix> = (0..n_domains)
            .map(|d| stream.domain(d).test.x.clone())
            .collect();
        let t: Vec<f64> = (0..n_domains)
            .flat_map(|d| stream.domain(d).test.true_ite())
            .collect();
        let e: Vec<f64> = est
            .try_predict_ite_batch(&chunks)?
            .into_iter()
            .flatten()
            .collect();
        Ok(EffectMetrics::from_ite(&t, &e).sqrt_pehe)
    };

    println!("CERL final √PEHE over all {n_domains} domains vs memory budget:\n");
    println!("{:<26} {:>10}", "configuration", "√PEHE");
    for budget in [60usize, 150, 300, 600] {
        let mut cfg = base.clone();
        cfg.memory_size = budget;
        let mut cerl = Cerl::try_new(d_in, cfg, 31)?;
        for d in 0..n_domains {
            cerl.try_observe(&stream.domain(d).train, &stream.domain(d).val)?;
        }
        println!(
            "{:<26} {:>10.3}",
            format!("CERL M={budget}"),
            union_pehe(&cerl)?
        );
    }

    // Random subsampling instead of herding at a tight budget.
    let mut cfg = base.clone();
    cfg.memory_size = 150;
    cfg.ablation.herding = false;
    let mut random_mem = Cerl::try_new(d_in, cfg, 31)?;
    for d in 0..n_domains {
        random_mem.try_observe(&stream.domain(d).train, &stream.domain(d).val)?;
    }
    println!(
        "{:<26} {:>10.3}",
        "CERL M=150 (random mem)",
        union_pehe(&random_mem)?
    );

    // The ideal that stores everything.
    let mut ideal = CfrC::new(d_in, base, 31);
    for d in 0..n_domains {
        ideal.try_observe(&stream.domain(d).train, &stream.domain(d).val)?;
    }
    println!(
        "{:<26} {:>10.3}",
        "ideal (all raw data)",
        union_pehe(&ideal)?
    );
    println!(
        "\nideal stores {} raw rows; CERL stores at most the budget in 32-d representations.",
        ideal.stored_units()
    );
    Ok(())
}
