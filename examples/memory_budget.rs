//! Memory-budget trade-off (paper Fig. 3a/3b): how small can the stored
//! representation set be before continual accuracy suffers?
//!
//! Runs CERL over three sequential domains at several memory budgets and
//! reports the final √PEHE over all seen test data, next to the all-data
//! ideal (CFR-C) and the herding-vs-random selection ablation.
//!
//! ```text
//! cargo run --release --example memory_budget
//! ```

use cerl::prelude::*;

fn main() {
    let n_domains = 3;
    let data_cfg = SyntheticConfig { n_units: 1000, noise_sd: 0.4, ..SyntheticConfig::default() };
    let gen = SyntheticGenerator::new(data_cfg, 31);
    let stream = DomainStream::synthetic(&gen, n_domains, 0, 31);
    let d_in = stream.domain(0).train.dim();

    let mut base = CerlConfig::default();
    base.train.epochs = 40;

    let union_pehe = |est: &dyn ContinualEstimator| -> f64 {
        let mut t = Vec::new();
        let mut e = Vec::new();
        for d in 0..n_domains {
            let test = &stream.domain(d).test;
            t.extend(test.true_ite());
            e.extend(est.predict_ite(&test.x));
        }
        EffectMetrics::from_ite(&t, &e).sqrt_pehe
    };

    println!("CERL final √PEHE over all {n_domains} domains vs memory budget:\n");
    println!("{:<26} {:>10}", "configuration", "√PEHE");
    for budget in [60usize, 150, 300, 600] {
        let mut cfg = base.clone();
        cfg.memory_size = budget;
        let mut cerl = Cerl::new(d_in, cfg, 31);
        for d in 0..n_domains {
            cerl.observe(&stream.domain(d).train, &stream.domain(d).val);
        }
        println!("{:<26} {:>10.3}", format!("CERL M={budget}"), union_pehe(&cerl));
    }

    // Random subsampling instead of herding at a tight budget.
    let mut cfg = base.clone();
    cfg.memory_size = 150;
    cfg.ablation.herding = false;
    let mut random_mem = Cerl::new(d_in, cfg, 31);
    for d in 0..n_domains {
        random_mem.observe(&stream.domain(d).train, &stream.domain(d).val);
    }
    println!("{:<26} {:>10.3}", "CERL M=150 (random mem)", union_pehe(&random_mem));

    // The ideal that stores everything.
    let mut ideal = CfrC::new(d_in, base, 31);
    for d in 0..n_domains {
        ContinualEstimator::observe(&mut ideal, &stream.domain(d).train, &stream.domain(d).val);
    }
    println!("{:<26} {:>10.3}", "ideal (all raw data)", union_pehe(&ideal));
    println!(
        "\nideal stores {} raw rows; CERL stores at most the budget in 32-d representations.",
        ideal.stored_units()
    );
}
