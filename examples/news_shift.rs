//! News benchmark walkthrough: how domain shift breaks naive strategies.
//!
//! Reproduces the Table I mechanics on a reduced News simulation: two
//! sequential datasets whose documents come from disjoint topic groups
//! (substantial shift), with treatment = viewing device and outcome =
//! reader opinion. Compares freezing (CFR-A), fine-tuning (CFR-B), and
//! CERL on both datasets' test splits.
//!
//! ```text
//! cargo run --release --example news_shift
//! ```

use cerl::data::TopicModelConfig;
use cerl::prelude::*;

fn main() -> Result<(), CerlError> {
    // Reduced News configuration (full scale: 5000 docs × 3477 words).
    let news = SemiSyntheticConfig {
        n_units: 800,
        topics: TopicModelConfig {
            n_topics: 50,
            vocab_size: 300,
            word_alpha: 0.05,
            doc_alpha: 0.2,
            doc_length: (30, 100),
            background_mix: 0.4,
        },
        ..SemiSyntheticConfig::news()
    };
    let gen = SemiSyntheticGenerator::new(news, 23);

    for shift in [DomainShift::Substantial, DomainShift::None] {
        println!("=== {} domain shift ===", shift.label());
        let stream = DomainStream::semisynthetic(&gen, shift, 0, 23);
        let d_in = stream.domain(0).train.dim();

        let mut cfg = CerlConfig::default();
        cfg.train.epochs = 40;
        cfg.memory_size = 80; // paper Table I: M = 500 at 5000 units

        let estimators: Vec<Box<dyn ContinualEstimator>> = vec![
            Box::new(CfrA::new(d_in, cfg.clone(), 23)),
            Box::new(CfrB::new(d_in, cfg.clone(), 23)),
            Box::new(Cerl::new(d_in, cfg.clone(), 23)),
        ];

        println!("{:<8} {:>16} {:>16}", "model", "prev √PEHE", "new √PEHE");
        for mut est in estimators {
            for d in 0..stream.len() {
                est.try_observe(&stream.domain(d).train, &stream.domain(d).val)?;
            }
            let prev = est.try_evaluate(&stream.domain(0).test)?;
            let new = est.try_evaluate(&stream.domain(1).test)?;
            println!(
                "{:<8} {:>16.2} {:>16.2}",
                est.name(),
                prev.sqrt_pehe,
                new.sqrt_pehe
            );
        }
        println!();
    }
    println!("expected shape: under substantial shift CFR-A degrades on the new");
    println!("dataset, CFR-B on the previous one, CERL stays close on both;");
    println!("with no shift all three are similar (paper Table I).");
    Ok(())
}
