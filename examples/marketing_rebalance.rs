//! Zero-downtime shard rebalancing: a city changes shards while batched
//! mixed-domain traffic keeps flowing.
//!
//! The fleet starts with cities 0 and 1 on shard 0 and city 2 on shard 1
//! (shard 0 is running hot). Clients hammer **cross-shard** requests —
//! every request mixes rows from all three cities, demuxed and merged by
//! [`ShardRouter::predict_ite_scatter`] — while an operator moves city 1
//! to shard 1:
//!
//! 1. `begin_rebalance` stages a successor engine for shard 1 (probed at
//!    staging time) and opens the dual-route window — the routing map is
//!    untouched, so city 1's reads keep landing on shard 0, which still
//!    holds it. A first attempt is **aborted** to show rollback is
//!    invisible to traffic.
//! 2. `commit_rebalance` publishes the successor on shard 1 and then
//!    flips the map with one atomic pointer swap: every request observes
//!    either the old topology or the new one, never a torn mixture.
//!
//! Zero request errors across the whole move is asserted at the end.
//!
//! ```text
//! cargo run --release --example marketing_rebalance
//! ```

use cerl::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CITIES: u64 = 3;
const CLIENTS: usize = 4;

fn main() -> Result<(), ServeError> {
    let gen = SyntheticGenerator::new(
        SyntheticConfig {
            n_units: 800,
            noise_sd: 0.4,
            mean_shift_scale: 1.0,
            ..SyntheticConfig::default()
        },
        37,
    );
    let stream = DomainStream::synthetic(&gen, CITIES as usize, 0, 37);

    let mut cfg = CerlConfig::quick_test();
    cfg.train.epochs = 20;

    // Shard 0 carries cities 0 and 1; shard 1 carries city 2.
    let mut shard0 = CerlEngineBuilder::new(cfg.clone()).seed(37).build()?;
    shard0.observe(&stream.domain(0).train, &stream.domain(0).val)?;
    shard0.observe(&stream.domain(1).train, &stream.domain(1).val)?;
    let mut shard1 = CerlEngineBuilder::new(cfg.clone()).seed(38).build()?;
    shard1.observe(&stream.domain(2).train, &stream.domain(2).val)?;

    let map = ShardMap::from_pairs(2, &[(0, 0), (1, 0), (2, 1)])?;
    let router = Arc::new(ShardRouter::with_batching(
        vec![shard0, shard1.clone()],
        map,
        BatchConfig {
            max_wait: Duration::from_millis(2),
            ..BatchConfig::default()
        },
    )?);
    println!(
        "fleet up: {:?} — city 1 lives on shard {}, shard versions {:?}",
        router.map().assignments(),
        router.route(1)?,
        router.shard_versions(),
    );

    // The successor shard 1 will warm during the move: its own engine
    // retrained on city 1's data, prepared off to the side.
    let mut successor = shard1;
    successor.observe(&stream.domain(1).train, &stream.domain(1).val)?;

    let stop = AtomicBool::new(false);
    let errors = AtomicUsize::new(0);
    let served = AtomicUsize::new(0);
    let cross_shard = AtomicU64::new(0);

    std::thread::scope(|scope| -> Result<(), ServeError> {
        let (stream, router) = (&stream, &router);
        let (stop, errors, served, cross_shard) = (&stop, &errors, &served, &cross_shard);
        for client in 0..CLIENTS {
            scope.spawn(move || {
                // Every request mixes rows of all three cities.
                let mut offset = client;
                while !stop.load(Ordering::Relaxed) {
                    let mut tags = Vec::with_capacity(9);
                    let mut data = Vec::new();
                    let mut cols = 0;
                    for i in 0..9usize {
                        let city = (client + i) as u64 % CITIES;
                        let x = &stream.domain(city as usize).test.x;
                        let row = (offset * 5 + i) % x.rows();
                        let slice = x.slice_rows(row, row + 1);
                        cols = slice.cols();
                        data.extend_from_slice(slice.as_slice());
                        tags.push(city);
                    }
                    offset += 1;
                    let x = Matrix::from_vec(tags.len(), cols, data);
                    match router.predict_ite_scatter_versioned(&tags, &x) {
                        Ok(response) => {
                            assert_eq!(response.ite.len(), tags.len());
                            if response.shard_versions.len() > 1 {
                                cross_shard.fetch_add(1, Ordering::Relaxed);
                            }
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        // First attempt: stage, then change our minds. Traffic never
        // notices — nothing was published.
        router.begin_rebalance(1, 1, successor.clone())?;
        println!(
            "dual-route window open: staged {:?}, city 1 still served by shard {}",
            router.rebalance_in_progress(),
            router.route(1)?,
        );
        std::thread::sleep(Duration::from_millis(100));
        router.abort_rebalance()?;
        println!(
            "aborted: map unchanged (city 1 on shard {}), shard versions {:?}",
            router.route(1)?,
            router.shard_versions(),
        );

        // Second attempt: stage and commit under the same load.
        router.begin_rebalance(1, 1, successor.clone())?;
        std::thread::sleep(Duration::from_millis(100));
        let version = router.commit_rebalance()?;
        println!(
            "committed: city 1 now on shard {} (destination at v{version}), shard versions {:?}",
            router.route(1)?,
            router.shard_versions(),
        );

        // Let the clients route against the new topology for a moment.
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        Ok(())
    })?;

    let stats = router.stats();
    println!(
        "{} scatter requests served ({} crossed shards, mean fan-out {:.2}), {} errors (want 0)",
        served.load(Ordering::Relaxed),
        cross_shard.load(Ordering::Relaxed),
        stats.mean_shards_per_scatter(),
        errors.load(Ordering::Relaxed),
    );
    println!(
        "per-version sub-batch counts across the move: {:?} | fleet e2e p95 {:.2} ms",
        stats.per_version_requests,
        stats.end_to_end.p95.as_secs_f64() * 1e3,
    );
    assert_eq!(errors.load(Ordering::Relaxed), 0);
    assert_eq!(router.route(1)?, 1);
    Ok(())
}
