//! Planned topology change: a 3-shard fleet grows into a 5-shard target
//! under live cross-shard traffic, driven by the rebalance orchestrator.
//!
//! Six cities start packed onto three shards; two freshly provisioned
//! shards (3 and 4) sit idle. Instead of hand-sequencing
//! `begin_rebalance`/`commit_rebalance` per city, an operator hands the
//! [`RebalanceOrchestrator`] the *target* [`ShardMap`]:
//!
//! 1. [`RebalanceOrchestrator::plan`] diffs live vs target topology and
//!    orders the moves load-aware — the hottest source shard drains
//!    first, ties resolved deterministically.
//! 2. [`RebalanceOrchestrator::execute`] runs each move through the
//!    zero-downtime begin → probe → commit path, watching a **canary
//!    window** of live traffic per move (error-rate and windowed-p95
//!    deltas against a pre-plan baseline) and auto-aborting the plan if
//!    the fleet regresses. Successor engines are staged at most
//!    `max_staged` ahead, bounding peak memory.
//!
//! Four concurrent clients hammer mixed-city scatter requests the whole
//! time; zero request errors across the entire migration is asserted at
//! the end.
//!
//! ```text
//! cargo run --release --example marketing_topology
//! ```

use cerl::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CITIES: u64 = 6;
const CLIENTS: usize = 4;

fn main() -> Result<(), ServeError> {
    let gen = SyntheticGenerator::new(
        SyntheticConfig {
            n_units: 800,
            noise_sd: 0.4,
            mean_shift_scale: 1.0,
            ..SyntheticConfig::default()
        },
        53,
    );
    let stream = DomainStream::synthetic(&gen, CITIES as usize, 0, 53);
    let mut cfg = CerlConfig::quick_test();
    cfg.train.epochs = 20;

    let train = |seed: u64, cities: &[usize]| -> Result<CerlEngine, ServeError> {
        let mut engine = CerlEngineBuilder::new(cfg.clone())
            .seed(seed)
            .build()
            .map_err(ServeError::Engine)?;
        for &c in cities {
            engine
                .observe(&stream.domain(c).train, &stream.domain(c).val)
                .map_err(ServeError::Engine)?;
        }
        Ok(engine)
    };

    // Three serving shards, two cities each; shards 3 and 4 are freshly
    // provisioned and idle — their engines are untrained placeholders,
    // legal because no domain routes to them until a commit publishes a
    // probed successor there first.
    let e0 = train(61, &[0, 1])?;
    let e1 = train(62, &[2, 3])?;
    let e2 = train(63, &[4, 5])?;
    let idle = |seed: u64| CerlEngineBuilder::new(cfg.clone()).seed(seed).build();
    let packed = ShardMap::from_pairs(5, &[(0, 0), (1, 0), (2, 1), (3, 1), (4, 2), (5, 2)])?;
    let router = Arc::new(ShardRouter::with_batching(
        vec![
            e0.clone(),
            e1,
            e2,
            idle(64).map_err(ServeError::Engine)?,
            idle(65).map_err(ServeError::Engine)?,
        ],
        packed,
        BatchConfig {
            max_wait: Duration::from_millis(2),
            ..BatchConfig::default()
        },
    )?);
    println!(
        "fleet up: {:?} over 5 shards (3 serving, 2 idle), versions {:?}",
        router.map().assignments(),
        router.shard_versions(),
    );

    // The target spreads the packed cities: city 1 gets its own shard 3,
    // city 3 gets shard 4, and city 5 consolidates onto shard 0.
    let target = ShardMap::from_pairs(5, &[(0, 0), (1, 3), (2, 1), (3, 4), (4, 2), (5, 0)])?;
    // Successors, prepared off to the side: dedicated per-city models for
    // the new shards; shard 0's next engine is its current model
    // retrained on the arriving city (it must keep serving city 0 too).
    let s3 = train(71, &[1])?;
    let s4 = train(72, &[3])?;
    let mut s0 = e0;
    s0.observe(&stream.domain(5).train, &stream.domain(5).val)
        .map_err(ServeError::Engine)?;

    let orchestrator = RebalanceOrchestrator::new(
        Arc::clone(&router),
        OrchestratorConfig {
            canary: CanaryConfig {
                window_requests: 16,
                max_wait: Duration::from_secs(5),
                max_error_rate: 0.05,
                max_p95_ratio: 100.0,
            },
            max_staged: 2,
        },
    );

    let stop = AtomicBool::new(false);
    let errors = AtomicUsize::new(0);
    let served = AtomicUsize::new(0);

    std::thread::scope(|scope| -> Result<(), ServeError> {
        let (stream, router) = (&stream, &router);
        let (stop, errors, served) = (&stop, &errors, &served);
        for client in 0..CLIENTS {
            scope.spawn(move || {
                // Every request mixes rows from all six cities.
                let mut offset = client;
                while !stop.load(Ordering::Relaxed) {
                    let mut tags = Vec::with_capacity(12);
                    let mut data = Vec::new();
                    let mut cols = 0;
                    for i in 0..12usize {
                        let city = (client + i) as u64 % CITIES;
                        let x = &stream.domain(city as usize).test.x;
                        let row = (offset * 5 + i) % x.rows();
                        let slice = x.slice_rows(row, row + 1);
                        cols = slice.cols();
                        data.extend_from_slice(slice.as_slice());
                        tags.push(city);
                    }
                    offset += 1;
                    let x = Matrix::from_vec(tags.len(), cols, data);
                    match router.predict_ite_scatter(&tags, &x) {
                        Ok(ite) => {
                            assert_eq!(ite.len(), tags.len());
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        let plan = orchestrator.plan(&target)?;
        println!("plan ({} moves, hottest source first):", plan.len());
        for mv in &plan.moves {
            println!("  {mv}");
        }

        let report = orchestrator.execute(&plan, |mv| {
            Ok(match mv.domain {
                1 => s3.clone(),
                3 => s4.clone(),
                5 => s0.clone(),
                other => unreachable!("no successor prepared for city {other}"),
            })
        })?;
        println!(
            "plan committed (baseline p95 {:?}):",
            report.baseline_p95.unwrap_or_default()
        );
        for mv in &report.moves {
            println!(
                "  {} -> destination v{} | canary window: {} ok / {} rejected, p95 {:?}",
                mv.mv,
                mv.destination_version,
                mv.window.requests,
                mv.window.rejected,
                mv.window.p95.unwrap_or_default(),
            );
        }

        // Let the clients route against the final topology for a moment.
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        Ok(())
    })?;

    let stats = router.stats();
    println!(
        "final topology: {:?}, versions {:?}",
        router.map().assignments(),
        router.shard_versions(),
    );
    println!(
        "{} scatter requests served across the migration, {} errors (want 0), mean fan-out {:.2} shards/request, fleet e2e p95 {:.2} ms",
        served.load(Ordering::Relaxed),
        errors.load(Ordering::Relaxed),
        stats.mean_shards_per_scatter(),
        stats.end_to_end.p95.as_secs_f64() * 1e3,
    );
    assert_eq!(errors.load(Ordering::Relaxed), 0);
    assert_eq!(*router.map(), target);
    assert!(orchestrator.plan(&target)?.is_empty());
    Ok(())
}
