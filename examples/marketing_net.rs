//! The sharded marketing fleet, served over a real TCP socket: a
//! [`NetServer`] reactor on loopback fronting a two-city
//! [`ShardRouter`], hammered by **1000+ concurrently-open client
//! connections** mixing single-city batched requests with cross-city
//! scatter requests — while one shard hot-swaps to a retrained engine
//! mid-traffic.
//!
//! Alongside the healthy herd run the abusive clients every real
//! front-end meets: a deadline flooder pipelining hundreds of 1 ms
//! requests behind a slow one (shed with typed `Deadline` responses
//! before touching the inference pool), and a slow reader that uploads
//! a huge pipeline and refuses to read (paused via write backpressure
//! instead of buffering without bound). Neither blocks the fast
//! clients, every successful answer is bitwise identical to the
//! in-process engines, and the run ends with **zero serve faults**.
//!
//! ```text
//! cargo run --release --example marketing_net
//! ```

use cerl::net::wire::{self, FrameReader};
use cerl::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const THREADS: usize = 8;
const CONNS_PER_THREAD: usize = 125; // 1000 concurrently-open sockets
const ROUNDS: usize = 3;
const PIPELINE: usize = 2;
const FLOOD: usize = 200;
const SLOW_REQUESTS: usize = 16;
const SLOW_ROWS: usize = 4096;

fn connect_retry(addr: SocketAddr) -> NetClient {
    for _ in 0..200 {
        match NetClient::connect(addr) {
            Ok(client) => return client,
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    panic!("could not connect to {addr}");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gen = SyntheticGenerator::new(
        SyntheticConfig {
            n_units: 400,
            ..SyntheticConfig::small()
        },
        41,
    );
    // Domains 0 and 1 are the two cities; domain 2 is city 1's second
    // observational batch, used to retrain its shard mid-run.
    let stream = DomainStream::synthetic(&gen, 3, 0, 41);

    let mut cfg = CerlConfig::quick_test();
    cfg.train.epochs = 8;
    cfg.memory_size = 80;

    let mut city0 = CerlEngineBuilder::new(cfg.clone()).seed(41).build()?;
    city0.observe(&stream.domain(0).train, &stream.domain(0).val)?;
    let mut city1 = CerlEngineBuilder::new(cfg).seed(42).build()?;
    city1.observe(&stream.domain(1).train, &stream.domain(1).val)?;
    let successor = {
        let mut replica = city1.clone();
        replica.observe(&stream.domain(2).train, &stream.domain(2).val)?;
        replica
    };

    // The fixed request every healthy client reuses, and the bitwise
    // references for each engine generation. Row i tagged city `d` must
    // come back as `gen_a[d][i]` — or `gen_b[i]` once city 1 swaps.
    let x = stream.domain(0).test.x.slice_rows(0, 8);
    let gen_a = [city0.predict_ite(&x)?, city1.predict_ite(&x)?];
    let gen_b = successor.predict_ite(&x)?;

    let map = ShardMap::from_pairs(2, &[(0, 0), (1, 1)])?;
    let router = Arc::new(ShardRouter::with_batching(
        vec![city0.clone(), city1],
        map,
        BatchConfig {
            max_wait: Duration::from_millis(1),
            queue_capacity: 8192,
            ..BatchConfig::default()
        },
    )?);
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetBackend::Router(Arc::clone(&router)),
        NetServerConfig {
            // Small admission window → the deadline flood queues and
            // sheds; small send buffer + high-water mark → the slow
            // reader trips backpressure deterministically.
            max_inflight_per_conn: 8,
            send_buffer_bytes: Some(8 * 1024),
            write_high_water: 64 * 1024,
            ..NetServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    println!(
        "fleet up on {addr}: 2 shards, {} clients x {ROUNDS} rounds x {PIPELINE} pipelined",
        THREADS * CONNS_PER_THREAD
    );

    let verified = Arc::new(AtomicUsize::new(0));
    let second_gen_seen = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();

    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        // ---- 1000 healthy clients: batched single-city + scatter ----
        for t in 0..THREADS {
            let x = &x;
            let gen_a = &gen_a;
            let gen_b = &gen_b;
            let verified = Arc::clone(&verified);
            let second_gen_seen = Arc::clone(&second_gen_seen);
            scope.spawn(move || {
                let mut clients: Vec<NetClient> =
                    (0..CONNS_PER_THREAD).map(|_| connect_retry(addr)).collect();
                // Even clients stay in one city (pure batched path);
                // odd clients scatter rows across both cities.
                let tags_of = |c: usize| -> Vec<u64> {
                    if c.is_multiple_of(2) {
                        vec![(c / 2 % 2) as u64; x.rows()]
                    } else {
                        (0..x.rows() as u64).map(|i| i % 2).collect()
                    }
                };
                for _ in 0..ROUNDS {
                    for (c, client) in clients.iter_mut().enumerate() {
                        for _ in 0..PIPELINE {
                            client.send_request(&tags_of(c), x, None).unwrap();
                        }
                    }
                    for (c, client) in clients.iter_mut().enumerate() {
                        let tags = tags_of(c);
                        for _ in 0..PIPELINE {
                            match client.recv_response().unwrap() {
                                WireResponse::Ite { ite, .. } => {
                                    for (i, got) in ite.iter().enumerate() {
                                        let a = gen_a[tags[i] as usize][i];
                                        let b = gen_b[i];
                                        let ok = got.to_bits() == a.to_bits()
                                            || (tags[i] == 1 && got.to_bits() == b.to_bits());
                                        assert!(
                                            ok,
                                            "thread {t} client {c} row {i}: \
                                             answer from no known engine generation"
                                        );
                                        if tags[i] == 1 && got.to_bits() == b.to_bits() {
                                            second_gen_seen.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                    verified.fetch_add(1, Ordering::Relaxed);
                                }
                                WireResponse::Error { status, detail, .. } => {
                                    panic!("healthy client rejected: {status:?}: {detail}")
                                }
                            }
                        }
                    }
                }
            });
        }

        // ---- deadline flooder: hundreds of 1 ms requests behind a slow one ----
        let flood_handle = scope.spawn({
            let base = &stream.domain(0).test.x;
            let city0 = &city0;
            move || {
                let idx: Vec<usize> = (0..8192).map(|i| i % base.rows()).collect();
                let big = base.select_rows(&idx);
                let big_ref = city0.predict_ite(&big).unwrap();
                let small = base.slice_rows(0, 4);
                let small_ref = city0.predict_ite(&small).unwrap();

                let mut flood = connect_retry(addr);
                let big_id = flood
                    .send_request(&vec![0; big.rows()], &big, None)
                    .unwrap();
                for _ in 0..FLOOD {
                    flood
                        .send_request(
                            &vec![0; small.rows()],
                            &small,
                            Some(Duration::from_millis(1)),
                        )
                        .unwrap();
                }
                let (mut ok, mut shed) = (0usize, 0usize);
                for _ in 0..=FLOOD {
                    match flood.recv_response().unwrap() {
                        WireResponse::Ite { request_id, ite } => {
                            let want = if request_id == big_id {
                                &big_ref
                            } else {
                                &small_ref
                            };
                            assert_eq!(ite.len(), want.len());
                            for (g, w) in ite.iter().zip(want) {
                                assert_eq!(g.to_bits(), w.to_bits(), "late-but-admitted answer");
                            }
                            if request_id != big_id {
                                ok += 1;
                            }
                        }
                        WireResponse::Error { status, .. } => {
                            assert_eq!(status, WireStatus::Deadline);
                            shed += 1;
                        }
                    }
                }
                (ok, shed)
            }
        });

        // ---- slow reader: uploads a huge pipeline, reads nothing for a while ----
        let slow_handle = scope.spawn({
            let base = &stream.domain(0).test.x;
            let city0 = &city0;
            move || {
                let idx: Vec<usize> = (0..SLOW_ROWS).map(|i| i % base.rows()).collect();
                let big = base.select_rows(&idx);
                let big_ref = city0.predict_ite(&big).unwrap();

                let stream_w = TcpStream::connect(addr).unwrap();
                stream_w.set_nodelay(true).unwrap();
                let mut stream_r = stream_w.try_clone().unwrap();
                let writer = std::thread::spawn(move || {
                    let mut stream_w = stream_w;
                    let mut frame = Vec::new();
                    for id in 1..=SLOW_REQUESTS as u64 {
                        frame.clear();
                        wire::encode_request(
                            &WireRequest {
                                request_id: id,
                                deadline_ms: 0,
                                cols: big.cols() as u32,
                                tags: vec![0; big.rows()],
                                covariates: big.as_slice().to_vec(),
                            },
                            &mut frame,
                        );
                        stream_w.write_all(&frame).unwrap();
                    }
                });

                // Refuse to read while the herd runs, then drain and
                // verify every byte survived the pause.
                std::thread::sleep(Duration::from_millis(300));
                let mut reader = FrameReader::new();
                let mut buf = [0u8; 64 * 1024];
                let mut received = 0u64;
                while received < SLOW_REQUESTS as u64 {
                    if let Some(payload) = reader.next_frame().unwrap() {
                        match wire::decode_response(&payload).unwrap() {
                            WireResponse::Ite { ite, .. } => {
                                received += 1;
                                for (g, w) in ite.iter().zip(&big_ref) {
                                    assert_eq!(g.to_bits(), w.to_bits(), "slow-reader drain");
                                }
                            }
                            WireResponse::Error { status, detail, .. } => {
                                panic!("slow reader rejected: {status:?}: {detail}")
                            }
                        }
                        continue;
                    }
                    let n = stream_r.read(&mut buf).unwrap();
                    assert!(n > 0, "server closed the slow connection early");
                    reader.extend(&buf[..n]);
                }
                writer.join().unwrap();
            }
        });

        // ---- mid-traffic hot swap of city 1's shard ----
        std::thread::sleep(Duration::from_millis(80));
        let version = router.swap_shard_engine(1, successor.clone())?;
        println!(
            "[{:>5.0} ms] city 1 hot-swapped to retrained engine (shard version {version})",
            started.elapsed().as_secs_f64() * 1e3
        );

        let (flood_ok, flood_shed) = flood_handle.join().unwrap();
        println!(
            "[{:>5.0} ms] deadline flood: {flood_ok} admitted + answered, {flood_shed} shed \
             with typed Deadline",
            started.elapsed().as_secs_f64() * 1e3
        );
        assert!(
            flood_shed > 0,
            "a 1 ms flood behind an 8192-row request must shed"
        );
        slow_handle.join().unwrap();
        Ok(())
    })?;

    let snap = server.stats();
    let elapsed = started.elapsed();
    println!(
        "herd done in {:.2} s: {} connections accepted, {} requests, {} ok responses",
        elapsed.as_secs_f64(),
        snap.accepted,
        snap.requests,
        snap.responses_ok
    );
    println!(
        "  verified bitwise: {} responses ({} second-generation city-1 rows observed)",
        verified.load(Ordering::Relaxed),
        second_gen_seen.load(Ordering::Relaxed)
    );
    println!(
        "  deadline shed {}, backpressure pauses {}, client faults {}, serve faults {}",
        snap.deadline_shed, snap.backpressure_pauses, snap.rejected_client, snap.rejected_serve
    );

    let expected_ok = THREADS * CONNS_PER_THREAD * ROUNDS * PIPELINE;
    assert_eq!(verified.load(Ordering::Relaxed), expected_ok);
    assert!(
        snap.backpressure_pauses >= 1,
        "the unread {SLOW_REQUESTS}x{SLOW_ROWS}-row pipeline must trip the high-water pause"
    );
    assert_eq!(
        snap.rejected_serve, 0,
        "a hot swap plus abusive clients must produce zero serve faults"
    );
    server.shutdown()?;
    println!(
        "zero serve faults across {} answered requests — fleet healthy",
        snap.responses_ok
    );
    Ok(())
}
