//! Hot-swap under load: the serving deployment shape from the paper's
//! continual story. One process answers ITE requests from several reader
//! threads *without interruption* while a new observational domain is
//! trained in and atomically swapped into place.
//!
//! Readers pin an engine version per request, so every answer comes from
//! exactly one published model — no torn reads, no blocking on training —
//! and the version numbers they observe only ever move forward.
//!
//! ```text
//! cargo run --release --example serving_hot_swap
//! ```

use cerl::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

const READERS: usize = 4;

fn main() -> Result<(), CerlError> {
    let gen = SyntheticGenerator::new(
        SyntheticConfig {
            n_units: 800,
            noise_sd: 0.4,
            mean_shift_scale: 1.0,
            ..SyntheticConfig::default()
        },
        13,
    );
    let stream = DomainStream::synthetic(&gen, 2, 0, 13);

    let mut cfg = CerlConfig::quick_test();
    cfg.train.epochs = 20;

    // Stage 1: train on the first domain, then start serving.
    let mut engine = CerlEngineBuilder::new(cfg).seed(13).build()?;
    engine.observe(&stream.domain(0).train, &stream.domain(0).val)?;
    let serving = Arc::new(ServingEngine::new(engine));
    println!(
        "serving version {} (stage {}), {READERS} reader threads starting...",
        serving.version(),
        serving.current().engine().stage()
    );

    let request = &stream.domain(0).test.x;
    let stop = AtomicBool::new(false);
    let errors = AtomicUsize::new(0);
    let served_v1 = AtomicUsize::new(0);
    let served_v2 = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..READERS {
            scope.spawn(|| {
                let mut last_version = 0;
                while !stop.load(Ordering::Relaxed) {
                    match serving.predict_ite_versioned(request) {
                        Ok((version, ite)) => {
                            assert!(version >= last_version, "versions must be monotone");
                            assert_eq!(ite.len(), request.rows());
                            last_version = version;
                            let counter = if version == 1 { &served_v1 } else { &served_v2 };
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        // Meanwhile, the second domain arrives: train a successor off to
        // the side and publish it. Readers above never pause.
        let outcome = serving.observe_and_swap(&stream.domain(1).train, &stream.domain(1).val);
        stop.store(true, Ordering::Relaxed);
        let (report, version) = outcome.expect("training the successor succeeds");
        println!(
            "swapped in version {version}: stage {} after {} epochs",
            report.stage, report.train.epochs_run
        );
    });

    let stats = serving.stats();
    println!(
        "requests answered during training+swap: {} on v1, {} on v2, {} errors (want 0)",
        served_v1.load(Ordering::Relaxed),
        served_v2.load(Ordering::Relaxed),
        errors.load(Ordering::Relaxed),
    );
    println!(
        "stats: {} served, {} rows, {} swaps, {} rejected",
        stats.requests_served, stats.rows_predicted, stats.swaps, stats.rejected_requests
    );

    assert_eq!(errors.load(Ordering::Relaxed), 0, "zero reader errors");
    assert_eq!(serving.version(), 2);
    assert!(
        served_v1.load(Ordering::Relaxed) > 0,
        "readers served during training"
    );

    // The final model serves both domains it has seen.
    for d in 0..2 {
        let test = &stream.domain(d).test;
        let m = EffectMetrics::on_dataset(test, &serving.predict_ite_parallel(&test.x, 0)?);
        println!("domain {d}: sqrtPEHE {:.3}", m.sqrt_pehe);
    }
    Ok(())
}
