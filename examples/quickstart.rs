//! Quickstart: continual causal-effect estimation over three shifted
//! domains through the serving-grade [`CerlEngine`] API, compared against
//! the naive fine-tuning strategy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cerl::prelude::*;

fn main() -> Result<(), CerlError> {
    // Three incrementally available observational datasets from shifted
    // distributions (the paper's §IV.C generator, scaled down).
    let data_cfg = SyntheticConfig {
        n_units: 1200,
        noise_sd: 0.4,
        ..SyntheticConfig::default()
    };
    let gen = SyntheticGenerator::new(data_cfg, 7);
    let stream = DomainStream::synthetic(&gen, 3, 0, 7);

    let mut cfg = CerlConfig::default();
    cfg.train.epochs = 40;
    cfg.memory_size = 400;

    // The builder validates the configuration up front; the covariate
    // dimension is inferred from the first observed domain.
    let mut engine = CerlEngineBuilder::new(cfg.clone()).seed(7).build()?;
    let mut finetune = CfrB::new(stream.domain(0).train.dim(), cfg, 7);

    println!("observing {} domains in arrival order…\n", stream.len());
    for d in 0..stream.len() {
        let report = engine.observe(&stream.domain(d).train, &stream.domain(d).val)?;
        finetune.try_observe(&stream.domain(d).train, &stream.domain(d).val)?;
        println!(
            "stage {} done: {} epochs, memory holds {} representations",
            report.stage, report.train.epochs_run, report.memory_len
        );
    }

    println!("\n√PEHE per seen domain (lower is better):");
    println!("{:<10} {:>10} {:>14}", "domain", "CERL", "fine-tuning");
    for d in 0..stream.len() {
        let test = &stream.domain(d).test;
        let m_cerl = EffectMetrics::on_dataset(test, &engine.predict_ite(&test.x)?);
        let m_ft = finetune.try_evaluate(test)?;
        println!(
            "{:<10} {:>10.3} {:>14.3}",
            d, m_cerl.sqrt_pehe, m_ft.sqrt_pehe
        );
    }

    // A trained engine is a value you can persist and reload: predictions
    // after the round trip are bitwise identical.
    let bytes = engine.save_bytes()?;
    let restored = CerlEngine::load_bytes(&bytes)?;
    let test = &stream.domain(0).test;
    assert_eq!(restored.predict_ite(&test.x)?, engine.predict_ite(&test.x)?);
    println!(
        "\nsnapshot round-trip: {} bytes, restored replica predicts identically.",
        bytes.len()
    );
    println!(
        "CERL kept {} stored representations instead of {} raw training rows.",
        engine.memory().map_or(0, |m| m.len()),
        (0..stream.len())
            .map(|d| stream.domain(d).train.n())
            .sum::<usize>()
    );
    Ok(())
}
