//! Quickstart: continual causal-effect estimation over three shifted
//! domains, compared against the naive fine-tuning strategy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cerl::prelude::*;

fn main() {
    // Three incrementally available observational datasets from shifted
    // distributions (the paper's §IV.C generator, scaled down).
    let data_cfg = SyntheticConfig { n_units: 1200, noise_sd: 0.4, ..SyntheticConfig::default() };
    let gen = SyntheticGenerator::new(data_cfg, 7);
    let stream = DomainStream::synthetic(&gen, 3, 0, 7);
    let d_in = stream.domain(0).train.dim();

    let mut cfg = CerlConfig::default();
    cfg.train.epochs = 40;
    cfg.memory_size = 400;

    let mut cerl = Cerl::new(d_in, cfg.clone(), 7);
    let mut finetune = CfrB::new(d_in, cfg, 7);

    println!("observing {} domains in arrival order…\n", stream.len());
    for d in 0..stream.len() {
        let report = cerl.observe(&stream.domain(d).train, &stream.domain(d).val);
        ContinualEstimator::observe(&mut finetune, &stream.domain(d).train, &stream.domain(d).val);
        println!(
            "stage {} done: {} epochs, memory holds {} representations",
            report.stage, report.train.epochs_run, report.memory_len
        );
    }

    println!("\n√PEHE per seen domain (lower is better):");
    println!("{:<10} {:>10} {:>14}", "domain", "CERL", "fine-tuning");
    for d in 0..stream.len() {
        let test = &stream.domain(d).test;
        let m_cerl = EffectMetrics::on_dataset(test, &cerl.predict_ite(&test.x));
        let m_ft = finetune.evaluate(test);
        println!("{:<10} {:>10.3} {:>14.3}", d, m_cerl.sqrt_pehe, m_ft.sqrt_pehe);
    }
    println!(
        "\nCERL kept {} stored representations instead of {} raw training rows.",
        cerl.memory().map_or(0, |m| m.len()),
        (0..stream.len()).map(|d| stream.domain(d).train.n()).sum::<usize>()
    );
}
